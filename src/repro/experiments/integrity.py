"""Integrity sweep: silent data corruption vs the verification modes.

The counting lines are the one place a transient can corrupt a *value*
rather than merely delay it: an S-CSMA read-out that is off by one turns
a SUM's per-bit count into the wrong bit, the op completes normally, and
every core commits a wrong result -- classic silent data corruption
(SDC).  This experiment measures that failure mode and what each
verification mode (:mod:`repro.gline.integrity`) does about it.

For each (integrity mode, miscount rate) cell the
:class:`~repro.workloads.collective.CollectiveSDCWorkload` runs a fixed
episode schedule on a 4x4 chip with seeded miscount injection, and the
table reports: injected miscounts, episodes checked, undetected wrong
values (the SDC count), integrity detections / round retries / op
retries / failovers, and cycles per episode (the overhead column).

The headline the committed golden pins: at every swept rate, ``off``
shows nonzero SDC while ``echo`` and ``residue`` show **zero** -- the
detection-completeness the verify layer proves at k=1 per round, held
end to end under random injection.  (The proved k=2 defeat exists:
two same-sign miscounts landing on both samples of one echo round slip
through.  At the swept rates and seed no such coincidence occurs; the
model-checker tests in ``tests/verify/test_integrity_model.py`` pin the
bound itself.)

Determinism: the plan seed derives every fault stream and is part of the
chip config, hence the exec cache key -- cold and cached reruns of the
sweep reproduce the table byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.report import render_table
from ..collectives.config import CollectiveConfig
from ..common.params import CMPConfig
from ..faults import FaultPlan
from ..workloads.collective import CollectiveSDCWorkload
from .runner import make_spec, run_many

DEFAULT_RATES = (0.002, 0.01, 0.02)
MODES = ("off", "echo", "residue", "vote")
DEFAULT_SEED = 11

#: Collective watchdog settings for the sweep: generous budget (an
#: episode needs ~40 cycles clean) so only genuine stalls -- e.g. a
#: gather under-count freezing the arrival phase -- trip it.
WATCHDOG_BUDGET = 600
WATCHDOG_RETRIES = 2


def integrity_config(num_cores: int, mode: str, rate: float,
                     seed: int) -> CMPConfig:
    """Collective-enabled config with verification *mode* and seeded
    S-CSMA miscount injection at *rate*."""
    cc = CollectiveConfig(enabled=True, value_width=8, integrity=mode,
                          watchdog_budget=WATCHDOG_BUDGET,
                          watchdog_retries=WATCHDOG_RETRIES)
    return CMPConfig.for_cores(num_cores, collectives=cc).with_(
        faults=FaultPlan(seed=seed, scsma_miscount_rate=rate))


@dataclass
class IntegrityResult:
    rates: tuple[float, ...]
    modes: tuple[str, ...]
    num_cores: int
    iterations: int
    seed: int
    #: rows[(mode, rate)] -> row dict (see ``run_integrity`` for keys).
    rows: dict = field(default_factory=dict)

    def sdc(self, mode: str, rate: float) -> int:
        """Undetected wrong values delivered in the given cell."""
        return self.rows[(mode, rate)]["wrong"]

    def overhead(self, mode: str, rate: float = 0.0) -> float:
        """Cycles/episode of *mode* relative to off at the same rate."""
        base = self.rows[("off", rate)]["cycles_per_episode"] or 1
        return self.rows[(mode, rate)]["cycles_per_episode"] / base

    def table(self) -> str:
        headers = ["Mode", "Miscount rate", "Miscounts", "Episodes",
                   "SDC", "Detections", "Corrections", "Round retries",
                   "Op retries", "Failovers", "Cycles/episode"]
        body = []
        for mode in self.modes:
            for rate in self.rates:
                row = self.rows[(mode, rate)]
                body.append([mode, f"{rate:g}", row["miscounts"],
                             row["episodes"], row["wrong"],
                             row["detections"], row["corrections"],
                             row["round_retries"], row["op_retries"],
                             row["failovers"],
                             f"{row['cycles_per_episode']:.1f}"])
        text = render_table(
            headers, body,
            title=(f"Integrity: undetected wrong collective values (SDC) "
                   f"vs S-CSMA miscount rate ({self.num_cores} cores, "
                   f"{self.iterations} episodes, seed {self.seed})"))
        worst_off = max(self.sdc("off", r) for r in self.rates)
        worst_ver = max(self.sdc(m, r) for m in self.modes if m != "off"
                        for r in self.rates)
        text += (f"\nSDC at off: {worst_off} (worst rate)   "
                 f"SDC with verification on: {worst_ver}   "
                 f"verified modes corruption-free: "
                 f"{'yes' if worst_ver == 0 else 'NO'}")
        return text


def run_integrity(rates=DEFAULT_RATES, num_cores: int = 16,
                  iterations: int = 20, seed: int = DEFAULT_SEED,
                  modes=MODES) -> IntegrityResult:
    """Sweep integrity mode x miscount rate; count SDC per cell."""
    result = IntegrityResult(rates=tuple(rates), modes=tuple(modes),
                             num_cores=num_cores, iterations=iterations,
                             seed=seed)
    workload = CollectiveSDCWorkload(iterations=iterations)
    points = [(mode, rate) for mode in modes for rate in rates]
    specs = [make_spec(workload, "gl", num_cores=num_cores,
                       config=integrity_config(num_cores, mode, rate,
                                               seed))
             for mode, rate in points]
    runs = run_many(specs)
    for (mode, rate), run in zip(points, runs):
        counters = run.stats.counters
        result.rows[(mode, rate)] = {
            "mode": mode,
            "rate": rate,
            "miscounts": counters.get("faults.gline.miscounts", 0),
            "episodes": counters.get(
                "workload.collective.episodes_checked", 0),
            "wrong": counters.get("workload.collective.wrong_values", 0),
            "detections": counters.get("faults.integrity.detections", 0),
            "corrections": counters.get(
                "faults.integrity.corrections", 0),
            "round_retries": counters.get(
                "faults.integrity.round_retries", 0),
            "op_retries": counters.get("faults.integrity.op_retries", 0),
            "failovers": counters.get("faults.integrity.failovers", 0)
            + counters.get("faults.collective.segment_failovers", 0),
            "cycles_per_episode": run.total_cycles / iterations,
        }
    return result
