"""Barrier-stage decomposition experiment (S1/S2/S3 analysis, §4.3).

The paper explains its application results through the three barrier
stages: notification (S1), busy-wait for the remaining cores (S2), release
(S3).  Its key observation: "we noticed that the latency of barriers is
dominated by the S2 stage and, as we mentioned, this implies workload
imbalance" -- which is why UNSTRUCTURED and OCEAN barely improve even
though GL makes S1+S3 nearly free.

This experiment quantifies that: per benchmark and per implementation it
reports the share of total in-barrier core time spent waiting for
stragglers (S2) versus driving the synchronization mechanism itself
(S1+S3).  Expectations:

* UNSTRUCTURED / OCEAN: S2-dominated under *both* DSW and GL (imbalance is
  a workload property; a faster barrier cannot fix it).
* Synthetic / fine-grain kernels: mechanism-dominated under DSW, and GL
  collapses the mechanism cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.report import pct, render_table
from ..chip.results import RunResult
from .fig6 import default_fig6_workloads
from .runner import run_benchmark


@dataclass
class StageRow:
    benchmark: str
    impl: str
    s2_cycles: int
    sync_cycles: int

    @property
    def total(self) -> int:
        return self.s2_cycles + self.sync_cycles

    @property
    def s2_share(self) -> float:
        return self.s2_cycles / self.total if self.total else 0.0


def decompose(result: RunResult) -> tuple[int, int]:
    """(S2 wait cycles, mechanism cycles) of one run."""
    return (result.stats.counters["barrier.s2_wait_cycles"],
            result.stats.counters["barrier.sync_cycles"])


@dataclass
class StagesResult:
    rows: list[StageRow] = field(default_factory=list)

    def table(self) -> str:
        headers = ["Benchmark", "Impl", "S2 (wait) cycles",
                   "S1+S3 (mechanism) cycles", "S2 share"]
        out = [[r.benchmark, r.impl, r.s2_cycles, r.sync_cycles,
                pct(r.s2_share)] for r in self.rows]
        return render_table(headers, out,
                            title="Barrier stage decomposition "
                                  "(S2 = waiting for stragglers)")

    def s2_share(self, benchmark: str, impl: str) -> float:
        for r in self.rows:
            if r.benchmark == benchmark and r.impl == impl:
                return r.s2_share
        raise KeyError((benchmark, impl))


def run_stages(num_cores: int = 32, scale: float = 0.5,
               workloads: dict | None = None,
               impls=("dsw", "gl")) -> StagesResult:
    """Regenerate the stage-decomposition analysis."""
    result = StagesResult()
    for name, wl in (workloads or default_fig6_workloads(scale)).items():
        for impl in impls:
            run = run_benchmark(wl, impl, num_cores=num_cores)
            s2, sync = decompose(run)
            result.rows.append(StageRow(name, impl.upper(), s2, sync))
    return result
