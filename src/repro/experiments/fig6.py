"""Figure 6: normalized execution-time breakdown, DSW vs GL, 32 cores.

For each kernel (K2, K3, K6) and application (UNSTRUCTURED, OCEAN, EM3D)
the paper shows stacked bars of execution time, normalized to the DSW run,
broken into Barrier / Write / Read / Lock / Busy, plus AVG_K and AVG_A
aggregate bars.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis import paper_data
from ..analysis.breakdown import (Breakdown, BreakdownComparison,
                                  average_normalized)
from ..analysis.report import pct, render_table
from ..common.stats import CycleCat
from ..workloads import (EM3DWorkload, Kernel2Workload, Kernel3Workload,
                         Kernel6Workload, OceanWorkload,
                         UnstructuredWorkload)
from .runner import compare_many


def default_fig6_workloads(scale: float = 1.0) -> dict:
    """The six Figure-6 benchmarks at bench sizes (see DESIGN.md §6)."""
    def s(x: int) -> int:
        return max(1, round(x * scale))

    return {
        "KERN2": Kernel2Workload(iterations=s(30)),
        "KERN3": Kernel3Workload(iterations=s(150)),
        "KERN6": Kernel6Workload(n=256, iterations=s(2)),
        "UNSTR": UnstructuredWorkload(phases=s(8)),
        "OCEAN": OceanWorkload(phases=s(8)),
        "EM3D": EM3DWorkload(nodes=1920, steps=s(8)),
    }


@dataclass
class Fig6Result:
    comparisons: dict[str, BreakdownComparison] = field(default_factory=dict)

    @property
    def kernel_comparisons(self) -> list[BreakdownComparison]:
        return [c for n, c in self.comparisons.items()
                if n in paper_data.KERNELS]

    @property
    def app_comparisons(self) -> list[BreakdownComparison]:
        return [c for n, c in self.comparisons.items()
                if n in paper_data.APPS]

    @property
    def avg_k(self) -> float:
        return average_normalized(self.kernel_comparisons)

    @property
    def avg_a(self) -> float:
        return average_normalized(self.app_comparisons)

    def table(self) -> str:
        headers = ["Benchmark", "GL/DSW time", "reduction",
                   "paper GL/DSW", "DSW barrier%", "GL barrier%"]
        rows = []
        for name, comp in self.comparisons.items():
            base_total = comp.baseline.total or 1
            rows.append([
                name,
                comp.normalized_treated_total,
                pct(comp.time_reduction),
                paper_data.FIG6_GL_NORM_TIME.get(name, float("nan")),
                pct(comp.baseline.cycles.get(CycleCat.BARRIER, 0)
                    / base_total),
                pct(comp.treated.cycles.get(CycleCat.BARRIER, 0)
                    / base_total),
            ])
        rows.append(["AVG_K", self.avg_k, pct(1 - self.avg_k),
                     paper_data.FIG6_AVG_K, "", ""])
        rows.append(["AVG_A", self.avg_a, pct(1 - self.avg_a),
                     paper_data.FIG6_AVG_A, "", ""])
        return render_table(headers, rows,
                            title="Figure 6: normalized execution time "
                                  "(DSW = 1.0), 32 cores")

    def stacked_table(self) -> str:
        """Per-category stacked-bar data (the actual Figure-6 content)."""
        headers = ["Benchmark", "Impl", "barrier", "write", "read",
                   "lock", "busy", "total"]
        rows = []
        for name, comp in self.comparisons.items():
            for label, bd in (("DSW", comp.baseline), ("GL", comp.treated)):
                fracs = bd.normalized_to(comp.baseline.total)
                row = [name, label]
                row += [fracs[cat] for cat in fracs]
                row.append(sum(fracs.values()))
                rows.append(row)
        return render_table(headers, rows,
                            title="Figure 6 stacked categories "
                                  "(normalized to DSW total)")


def run_fig6(num_cores: int = 32, scale: float = 1.0,
             workloads: dict | None = None) -> Fig6Result:
    """Regenerate Figure 6."""
    result = Fig6Result()
    comps = compare_many(workloads or default_fig6_workloads(scale),
                         num_cores=num_cores)
    for name, comp in comps.items():
        result.comparisons[name] = BreakdownComparison(
            benchmark=name,
            baseline=Breakdown.from_result("DSW", comp.baseline),
            treated=Breakdown.from_result("GL", comp.treated))
    return result
