"""Figure 5: average time per barrier vs core count, CSW / DSW / GL.

Methodology (paper §4.2, after Culler et al.): average time per barrier
over a loop of four consecutive barriers with no work between them.  The
plotted metric is total execution cycles divided by the number of barriers
executed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.report import render_table
from ..workloads.synthetic import SyntheticBarrierWorkload
from .runner import make_spec, run_many

DEFAULT_CORE_COUNTS = (4, 8, 16, 32)
DEFAULT_IMPLS = ("csw", "dsw", "gl")


@dataclass
class Fig5Result:
    core_counts: tuple[int, ...]
    impls: tuple[str, ...]
    #: cycles_per_barrier[impl][cores]
    cycles_per_barrier: dict[str, dict[int, float]] = field(
        default_factory=dict)
    iterations: int = 0

    def table(self) -> str:
        headers = ["Cores"] + [impl.upper() for impl in self.impls]
        rows = []
        for n in self.core_counts:
            rows.append([n] + [self.cycles_per_barrier[i][n]
                               for i in self.impls])
        return render_table(
            headers, rows,
            title=f"Figure 5: avg cycles per barrier "
                  f"({self.iterations} iterations x 4 barriers)")

    def is_ordered(self) -> bool:
        """CSW > DSW > GL at every core count (the figure's key shape)."""
        for n in self.core_counts:
            values = [self.cycles_per_barrier[i][n] for i in self.impls]
            if values != sorted(values, reverse=True):
                return False
        return True


def run_fig5(core_counts=DEFAULT_CORE_COUNTS, impls=DEFAULT_IMPLS,
             iterations: int = 100) -> Fig5Result:
    """Regenerate Figure 5's data series."""
    result = Fig5Result(core_counts=tuple(core_counts),
                        impls=tuple(impls), iterations=iterations)
    # One flat batch of independent (impl, cores) runs -- a parallel
    # executor overlaps the whole figure.
    points = [(impl, n) for impl in impls for n in core_counts]
    specs = [make_spec(SyntheticBarrierWorkload(iterations=iterations),
                       impl, num_cores=n) for impl, n in points]
    runs = run_many(specs)
    for (impl, n), run in zip(points, runs):
        result.cycles_per_barrier.setdefault(impl, {})[n] = \
            run.total_cycles / run.num_barriers()
    return result
