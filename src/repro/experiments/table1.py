"""Table 1: CMP baseline configuration."""

from __future__ import annotations

from ..analysis.report import render_table
from ..common.params import CMPConfig

#: The paper's Table 1, for verification.
PAPER_TABLE1 = {
    "Number of cores": "32",
    "Cache line size": "64 Bytes",
    "Memory access time": "400 cycles",
}


def run_table1(config: CMPConfig | None = None) -> str:
    """Render the simulated chip's configuration, Table-1 style."""
    cfg = config or CMPConfig()
    return render_table(["Parameter", "Value"], cfg.table1(),
                        title="Table 1: CMP baseline configuration")


def matches_paper(config: CMPConfig | None = None) -> bool:
    """True if the headline Table-1 values match the paper's."""
    cfg = config or CMPConfig()
    table = dict(cfg.table1())
    return all(table.get(k) == v for k, v in PAPER_TABLE1.items())
