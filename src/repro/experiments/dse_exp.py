"""DSE-driven crossover study: where does dedicated wiring stop paying?

The paper argues the G-line network's advantage by comparing one
hand-picked configuration per mesh size against software barriers.
This driver asks the searched version of that question: for each mesh,
:func:`repro.dse.run_search` maps the latency/energy/wire Pareto front
of a space spanning barrier variant (``gl``/``dsw``/``csw``),
flat-vs-hierarchical topology, watchdog hardening and collective
backend -- and the headline compares the best G-line point against the
best all-software point on the same front, pricing the speedup in
dedicated wires.

Searches share one scheduler (and therefore one cache/journal/chaos
policy), so a crossover study resumes and warm-reruns exactly like a
plain ``repro dse`` invocation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from ..common.params import mesh_dims
from ..dse.scheduler import SweepScheduler
from ..dse.search import DEFAULT_OBJECTIVES, SearchResult, run_search
from ..dse.space import Axis, DseSpace

#: Fidelity rungs for the crossover searches (big meshes are costly;
#: the top rung stays modest).
CROSSOVER_RUNGS = (2, 4, 8)


def crossover_space(num_cores: int) -> DseSpace:
    """The per-mesh search space of the crossover study."""
    rows, cols = mesh_dims(num_cores)
    return DseSpace(
        name=f"crossover-{rows}x{cols}",
        description=f"crossover study axes at {rows}x{cols}",
        axes=(Axis("mesh", (f"{rows}x{cols}",)),
              Axis("topology", ("fit", "hier")),
              Axis("watchdog_budget", (0, 64)),
              Axis("barrier", ("gl", "dsw", "csw")),
              Axis("collectives", ("off", "gl", "sw"))))


@dataclass
class DseCrossoverResult:
    """Per-mesh Pareto fronts plus the G-line-vs-software headline."""

    core_counts: tuple[int, ...]
    budget: int
    seed: int
    fronts: dict[int, SearchResult] = field(default_factory=dict)

    def best_latency(self, num_cores: int,
                     barrier: str) -> float | None:
        """Best (lowest) latency on the front using *barrier*."""
        picks = [fp.objectives["latency"]
                 for fp in self.fronts[num_cores].front
                 if fp.point.get("barrier") == barrier]
        return min(picks) if picks else None

    def headline(self, num_cores: int) -> str:
        front = self.fronts[num_cores].front
        gl = self.best_latency(num_cores, "gl")
        sw = [lat for b in ("dsw", "csw")
              if (lat := self.best_latency(num_cores, b)) is not None]
        if gl is None or not sw:
            return (f"{num_cores} cores: front lacks a gl/software "
                    f"pair; no crossover to report")
        best_sw = min(sw)
        wires = min(fp.objectives.get("wires", 0.0) for fp in front
                    if fp.point.get("barrier") == "gl")
        return (f"{num_cores} cores: best G-line point "
                f"{gl:.1f} cycles/episode vs best software "
                f"{best_sw:.1f} -- {best_sw / gl:.2f}x for "
                f"{wires:.0f} dedicated wires")

    def table(self) -> str:
        parts = [self.fronts[n].table() for n in self.core_counts]
        headline = ["crossover headline:"] + \
            [f"  {self.headline(n)}" for n in self.core_counts]
        return "\n\n".join(parts + ["\n".join(headline)])


def run_dse_crossover(core_counts: Sequence[int] = (64, 256),
                      budget: int = 20, seed: int = 7,
                      objectives: Sequence[str] = DEFAULT_OBJECTIVES,
                      rungs: Sequence[int] = CROSSOVER_RUNGS,
                      scheduler: SweepScheduler | None = None,
                      ) -> DseCrossoverResult:
    """Run the per-mesh searches (8x8 and 16x16 by default)."""
    sched: Any = scheduler if scheduler is not None \
        else SweepScheduler(jobs=1, keep_going=True)
    result = DseCrossoverResult(core_counts=tuple(core_counts),
                                budget=budget, seed=seed)
    for num_cores in result.core_counts:
        result.fronts[num_cores] = run_search(
            crossover_space(num_cores), objectives, budget=budget,
            seed=seed, scheduler=sched, rungs=rungs)
    return result
