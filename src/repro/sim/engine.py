"""Discrete-event simulation kernel.

A single binary-heap event queue drives the whole chip.  Events are
``(time, priority, seq, callback, args)`` tuples; ``seq`` is a monotonically
increasing tie-breaker so execution order is fully deterministic for equal
timestamps (a requirement for reproducible experiments and property tests).

The engine is deliberately minimal -- per the profiling-first guidance, the
hot path is ``schedule`` + ``run``'s pop loop, so both avoid any allocation
beyond the event tuple itself.

This heap engine is the repo's *reference* backend: the batched kernel in
:mod:`repro.sim.fastcore` must reproduce its execution order event for
event (the differential-oracle contract pinned by
``tests/sim/test_fastcore_diff.py``).  Changes to ordering semantics here
must be mirrored there.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from ..common.errors import SimulationError
from ..obs.tracer import NULL_TRACER, Tracer

Callback = Callable[..., None]


class Engine:
    """Deterministic discrete-event engine with integer cycle time."""

    __slots__ = ("_queue", "_now", "_seq", "_running", "_cancelled",
                 "events_executed", "tracer", "order_log")

    def __init__(self) -> None:
        self._queue: list[tuple[int, int, int, Callback, tuple[Any, ...]]] = []
        self._now: int = 0
        self._seq: int = 0
        self._running = False
        #: Sequence numbers whose events were cancelled but not yet reaped
        #: from the queue (lazy deletion keeps ``cancel`` O(1)).
        self._cancelled: set[int] = set()
        self.events_executed: int = 0
        #: Observability sink; NULL_TRACER keeps the hot path allocation-free.
        self.tracer: Tracer = NULL_TRACER
        #: Optional execution-order probe: when set to a list, every
        #: executed event appends ``(time, priority, seq, qualname)``.
        #: Used by the dual-run differential oracle to assert that two
        #: backends execute the exact same event sequence; ``None`` (the
        #: default) costs one attribute read per run() call.
        self.order_log: Optional[list[tuple[int, int, int, str]]] = None

    # ------------------------------------------------------------------ #
    @property
    def now(self) -> int:
        """Current simulation time in cycles."""
        return self._now

    def pending(self) -> int:
        """Number of events still queued (cancelled-but-unreaped events
        count until their cycle is reached)."""
        return len(self._queue)

    # ------------------------------------------------------------------ #
    def schedule(self, delay: int, callback: Callback, *args: Any,
                 priority: int = 0) -> int:
        """Schedule *callback(args)* to run ``delay`` cycles from now.

        ``priority`` breaks same-cycle ties before the sequence number:
        lower priority values run first.  Components use it sparingly
        (e.g. the G-line network samples transmitters after all writers of
        the same cycle have asserted).

        Returns an opaque handle accepted by :meth:`cancel`.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay}")
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq,
                                     callback, args))
        return self._seq

    def schedule_at(self, time: int, callback: Callback, *args: Any,
                    priority: int = 0) -> int:
        """Schedule *callback(args)* at absolute cycle ``time``.

        Returns an opaque handle accepted by :meth:`cancel`."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time}, now is {self._now}")
        self._seq += 1
        heapq.heappush(self._queue, (time, priority, self._seq,
                                     callback, args))
        return self._seq

    def cancel(self, handle: int) -> None:
        """Cancel the event identified by *handle* (a value returned by
        :meth:`schedule`/:meth:`schedule_at`).

        Cancellation is lazy: the event stays queued until its cycle is
        reached, then is discarded without executing (it neither runs nor
        counts toward ``events_executed``/``max_events``).  Cancelling an
        event that already executed, or an unknown handle, is a silent
        no-op.  The simulation clock still advances to the cancelled
        event's cycle when it is reaped, exactly as if an empty event ran
        there.
        """
        self._cancelled.add(handle)

    # ------------------------------------------------------------------ #
    def run(self, until: int | None = None,
            max_events: int | None = None) -> int:
        """Run until the queue drains, ``until`` cycles pass, or
        ``max_events`` events execute.  Returns the final time."""
        if self._running:
            raise SimulationError("engine is not reentrant")
        if until is not None and until < self._now:
            raise SimulationError(
                f"cannot run until {until}, now is already {self._now}")
        self._running = True
        if self.tracer.enabled:
            self.tracer.emit(self._now, "engine", "engine.run.begin",
                             until=until, max_events=max_events,
                             pending=len(self._queue))
        queue = self._queue
        cancelled = self._cancelled
        log = self.order_log
        try:
            while queue:
                if (max_events is not None
                        and self.events_executed >= max_events):
                    break
                time, prio, seq, callback, args = queue[0]
                if until is not None and time > until:
                    self._now = until
                    break
                heapq.heappop(queue)
                self._now = time
                if cancelled and seq in cancelled:
                    cancelled.discard(seq)
                    continue
                self.events_executed += 1
                if log is not None:
                    log.append((time, prio, seq,
                                getattr(callback, "__qualname__", "?")))
                callback(*args)
            else:
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
        if self.tracer.enabled:
            self.tracer.emit(self._now, "engine", "engine.run.end",
                             events=self.events_executed,
                             pending=len(self._queue))
        return self._now

    def step(self) -> bool:
        """Execute exactly one event.  Returns False if the queue is empty
        (cancelled events are reaped silently, never "executed")."""
        cancelled = self._cancelled
        while self._queue:
            time, prio, seq, callback, args = heapq.heappop(self._queue)
            self._now = time
            if cancelled and seq in cancelled:
                cancelled.discard(seq)
                continue
            self.events_executed += 1
            if self.order_log is not None:
                self.order_log.append((time, prio, seq,
                                       getattr(callback, "__qualname__",
                                               "?")))
            callback(*args)
            return True
        return False
