"""Discrete-event simulation kernel.

A single binary-heap event queue drives the whole chip.  Events are
``(time, priority, seq, callback, args)`` tuples; ``seq`` is a monotonically
increasing tie-breaker so execution order is fully deterministic for equal
timestamps (a requirement for reproducible experiments and property tests).

The engine is deliberately minimal -- per the profiling-first guidance, the
hot path is ``schedule`` + ``run``'s pop loop, so both avoid any allocation
beyond the event tuple itself.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from ..common.errors import SimulationError
from ..obs.tracer import NULL_TRACER

Callback = Callable[..., None]


class Engine:
    """Deterministic discrete-event engine with integer cycle time."""

    __slots__ = ("_queue", "_now", "_seq", "_running", "events_executed",
                 "tracer")

    def __init__(self) -> None:
        self._queue: list[tuple[int, int, int, Callback, tuple[Any, ...]]] = []
        self._now: int = 0
        self._seq: int = 0
        self._running = False
        self.events_executed: int = 0
        #: Observability sink; NULL_TRACER keeps the hot path allocation-free.
        self.tracer = NULL_TRACER

    # ------------------------------------------------------------------ #
    @property
    def now(self) -> int:
        """Current simulation time in cycles."""
        return self._now

    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue)

    # ------------------------------------------------------------------ #
    def schedule(self, delay: int, callback: Callback, *args: Any,
                 priority: int = 0) -> None:
        """Schedule *callback(args)* to run ``delay`` cycles from now.

        ``priority`` breaks same-cycle ties before the sequence number:
        lower priority values run first.  Components use it sparingly
        (e.g. the G-line network samples transmitters after all writers of
        the same cycle have asserted).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay}")
        self.schedule_at(self._now + delay, callback, *args,
                         priority=priority)

    def schedule_at(self, time: int, callback: Callback, *args: Any,
                    priority: int = 0) -> None:
        """Schedule *callback(args)* at absolute cycle ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time}, now is {self._now}")
        self._seq += 1
        heapq.heappush(self._queue, (time, priority, self._seq,
                                     callback, args))

    # ------------------------------------------------------------------ #
    def run(self, until: int | None = None,
            max_events: int | None = None) -> int:
        """Run until the queue drains, ``until`` cycles pass, or
        ``max_events`` events execute.  Returns the final time."""
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        if self.tracer.enabled:
            self.tracer.emit(self._now, "engine", "engine.run.begin",
                             until=until, max_events=max_events,
                             pending=len(self._queue))
        queue = self._queue
        try:
            while queue:
                if max_events is not None and self.events_executed >= max_events:
                    break
                time, _prio, _seq, callback, args = queue[0]
                if until is not None and time > until:
                    self._now = until
                    break
                heapq.heappop(queue)
                self._now = time
                self.events_executed += 1
                callback(*args)
            else:
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
        if self.tracer.enabled:
            self.tracer.emit(self._now, "engine", "engine.run.end",
                             events=self.events_executed,
                             pending=len(self._queue))
        return self._now

    def step(self) -> bool:
        """Execute exactly one event.  Returns False if the queue is empty."""
        if not self._queue:
            return False
        time, _prio, _seq, callback, args = heapq.heappop(self._queue)
        self._now = time
        self.events_executed += 1
        callback(*args)
        return True
