"""Optional event tracing.

Tracing is off by default (a no-op sink) so the hot simulation path pays a
single attribute lookup.  Enable a :class:`ListTracer` in tests or debugging
sessions to capture a structured log of what every component did and when.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class TraceEvent:
    time: int
    source: str
    kind: str
    detail: dict[str, Any]


class Tracer:
    """Base tracer: discards everything."""

    enabled = False

    def emit(self, time: int, source: str, kind: str, **detail: Any) -> None:
        """Record one trace event (no-op in the base class)."""


class ListTracer(Tracer):
    """Tracer that appends :class:`TraceEvent` records to a list."""

    enabled = True

    def __init__(self, kinds: set[str] | None = None):
        #: If given, only events whose ``kind`` is in this set are kept.
        self.kinds = kinds
        self.events: list[TraceEvent] = []

    def emit(self, time: int, source: str, kind: str, **detail: Any) -> None:
        if self.kinds is None or kind in self.kinds:
            self.events.append(TraceEvent(time, source, kind, detail))

    def of_kind(self, kind: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def clear(self) -> None:
        self.events.clear()


#: Shared do-nothing tracer instance.
NULL_TRACER = Tracer()
