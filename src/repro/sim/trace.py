"""Compatibility shim: tracing now lives in :mod:`repro.obs`.

The original module defined a no-op :class:`Tracer` and an *unbounded*
:class:`ListTracer`; both names (plus :class:`TraceEvent` and
:data:`NULL_TRACER`) are re-exported here from the observability
subsystem so existing imports keep working.  ``ListTracer`` is now a
bounded ring (see :class:`repro.obs.RingTracer`) -- pass
``capacity=None`` for the old grow-forever behaviour.
"""

from __future__ import annotations

from ..obs.events import TraceEvent
from ..obs.tracer import (DEFAULT_CAPACITY, NULL_TRACER, ListTracer,
                          RingTracer, Tracer)

__all__ = ["TraceEvent", "Tracer", "RingTracer", "ListTracer",
           "NULL_TRACER", "DEFAULT_CAPACITY"]
