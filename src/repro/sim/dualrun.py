"""Dual-backend differential oracle.

:func:`run_dual` executes the *same* workload on two chips that differ
only in their event-engine backend -- the reference heap engine and the
batched calendar kernel -- and asserts that every observable output is
identical:

* the **event execution order** (each engine's ``order_log``:
  ``(time, priority, seq, qualname)`` per executed event),
* the **StatsRegistry dump** (every paper-figure number),
* the **RunResult** (total cycles, events executed, metrics),
* optionally the **full trace stream** (every ``TraceEvent`` both chips
  emit, compared event by event).

This is the traced==untraced pattern from the observability subsystem
turned on the simulator core itself: the heap engine is the oracle, and
any divergence -- including "one backend raised and the other didn't" --
surfaces as a :class:`DualRunDivergence` naming the first differing
entry.  ``tests/sim/test_fastcore_diff.py`` drives this under Hypothesis
with random workloads and fault plans; ``repro.bench`` uses the same
chips for apples-to-apples timing.

The two chips cannot share component objects (each component binds its
engine at construction), so :func:`run_dual` builds two complete chips
from one config.  Workload objects in this repo are immutable functions
of their constructor parameters, so the same instance drives both runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..common.errors import ReproError
from ..obs import Observability, RingTracer


class DualRunDivergence(ReproError):
    """The two backends produced observably different executions."""


def _first_diff(a: list[Any], b: list[Any]) -> str:
    """Human-readable pointer at the first differing entry of two logs."""
    for i, (x, y) in enumerate(zip(a, b)):
        if x != y:
            return f"entry {i}: heap={x!r} batched={y!r}"
    return (f"length mismatch: heap has {len(a)} entries, "
            f"batched has {len(b)}")


@dataclass
class DualRunReport:
    """Outcome of one dual run (oracle side's numbers)."""

    result: Any                    # RunResult from the heap (oracle) chip
    events_executed: int           # identical on both backends by contract
    order_entries: int             # length of the compared order logs
    trace_entries: int             # compared trace events (0 if untraced)
    #: Both runs raised the same error instead of completing (the chips
    #: diverged from *success*, not from each other) -- e.g. a fault plan
    #: that deadlocks both backends identically.
    error: Optional[str] = None


def run_dual(workload: Any, config: Any, barrier: str = "gl",
             max_cycles: int | None = None,
             max_events: int | None = None,
             compare_traces: bool = False) -> DualRunReport:
    """Run *workload* on heap and batched chips; raise on any divergence.

    *config* is a :class:`~repro.common.params.CMPConfig`; its
    ``sim_backend`` field is overridden per side.  With
    ``compare_traces=True`` both chips carry an unbounded
    :class:`RingTracer` plus metrics and the full per-event streams are
    compared (slower; the engine's own ``engine.run.*`` events are
    included -- both backends emit identical pending/executed counts).
    """
    from ..chip.cmp import CMP

    sides: dict[str, dict[str, Any]] = {}
    for backend in ("heap", "batched"):
        chip = CMP(config.with_(sim_backend=backend), barrier=barrier)
        chip.engine.order_log = []
        obs = None
        if compare_traces:
            obs = Observability.full(config.num_cores, capacity=None)
            chip.set_obs(obs)
        result = error = None
        try:
            result = chip.run(workload, max_cycles=max_cycles,
                              max_events=max_events)
        except ReproError as exc:
            error = f"{type(exc).__name__}: {exc}"
        sides[backend] = {
            "chip": chip, "obs": obs, "result": result, "error": error}

    heap, batched = sides["heap"], sides["batched"]
    if heap["error"] != batched["error"]:
        raise DualRunDivergence(
            f"outcome mismatch: heap={heap['error'] or 'completed'!r} "
            f"batched={batched['error'] or 'completed'!r}")

    h_log = heap["chip"].engine.order_log
    b_log = batched["chip"].engine.order_log
    if h_log != b_log:
        raise DualRunDivergence(
            "event order diverged: " + _first_diff(h_log, b_log))

    h_stats = heap["chip"].stats.to_dict()
    b_stats = batched["chip"].stats.to_dict()
    if h_stats != b_stats:
        keys = [k for k in h_stats if h_stats[k] != b_stats.get(k)]
        raise DualRunDivergence(f"stats diverged in {keys[:5]}")

    if heap["result"] is not None:
        h_res = heap["result"].to_dict()
        b_res = batched["result"].to_dict()
        if h_res != b_res:
            keys = [k for k in h_res if h_res[k] != b_res.get(k)]
            raise DualRunDivergence(f"RunResult diverged in {keys}")

    h_ev = heap["chip"].engine.events_executed
    b_ev = batched["chip"].engine.events_executed
    if h_ev != b_ev:
        raise DualRunDivergence(
            f"events_executed diverged: heap={h_ev} batched={b_ev}")
    if heap["chip"].engine.pending() != batched["chip"].engine.pending():
        raise DualRunDivergence(
            f"pending() diverged: heap={heap['chip'].engine.pending()} "
            f"batched={batched['chip'].engine.pending()}")

    trace_entries = 0
    if compare_traces:
        h_trace = [e.to_dict() for e in heap["obs"].tracer.events]
        b_trace = [e.to_dict() for e in batched["obs"].tracer.events]
        if h_trace != b_trace:
            raise DualRunDivergence(
                "trace streams diverged: " + _first_diff(h_trace, b_trace))
        trace_entries = len(h_trace)
        h_metrics = heap["obs"].metrics.to_dict()
        b_metrics = batched["obs"].metrics.to_dict()
        if h_metrics != b_metrics:
            raise DualRunDivergence("metrics streams diverged")

    return DualRunReport(result=heap["result"], events_executed=h_ev,
                         order_entries=len(h_log),
                         trace_entries=trace_entries,
                         error=heap["error"])
