"""Batched discrete-event kernel (the ``"batched"`` sim backend).

:class:`FastEngine` replaces the global binary heap of
:mod:`repro.sim.engine` with a *calendar of per-cycle buckets*: all events
that fall in the same cycle live in one bucket, and the engine advances
bucket by bucket, draining each in a single pass.  A small heap orders the
distinct cycle numbers only, so the common case -- many events per cycle,
which is exactly what barrier episodes produce (every core arrives, every
G-line controller ticks, every router forwards in the same few cycles) --
costs one O(log t) pop per *cycle* instead of one O(log n) pop per *event*.

Within a bucket, the default-priority events (priority 0, the vast
majority) are kept in a plain appended list and consumed by index: FIFO
order *is* sequence order, so no comparison work is needed at all.
Non-zero priorities go to a per-bucket mini-heap keyed ``(priority, seq)``.
The drain loop merges the two streams so that the observable execution
order is **exactly** the reference heap engine's global
``(time, priority, seq)`` order -- the merge rule exploits the invariant
that every list event has priority 0:

* a mini-heap head with negative priority beats every list event,
* otherwise any remaining list event (priority 0) beats a positive-priority
  mini-heap head,
* the list exhausted, the mini-heap drains in ``(priority, seq)`` order.

Zero-delay events scheduled from inside a callback land in the live bucket
and are picked up by the same merge rule, reproducing the heap engine's
mid-cycle interleaving bit for bit.

Why not numpy?  The paper-scale meshes (up to 16x16) give the G-line
network tens of wires and the NoC a few hundred links -- far below the
array sizes where numpy's per-call overhead amortizes, and vectorizing the
controllers would break the shared-component/bit-identity contract the
differential oracle depends on.  ``docs/performance.md`` records the
measurements behind this decision.

The class mirrors :class:`repro.sim.engine.Engine`'s public surface
exactly (``schedule``/``schedule_at``/``cancel``/``run``/``step``/``now``/
``pending``/``events_executed``/``tracer``/``order_log``) so components
and the chip need no changes; ``tests/sim/test_fastcore_diff.py`` pins the
two backends to identical behaviour property-by-property.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from ..common.errors import SimulationError
from ..obs.tracer import NULL_TRACER, Tracer

Callback = Callable[..., None]

# A bucket is [fifo list of (seq, callback, args), consumed-prefix index,
# mini-heap of (priority, seq, callback, args)] -- a mutable list rather
# than a class keeps per-bucket allocation at one object.


class FastEngine:
    """Bucket-batched engine, observably identical to :class:`Engine`."""

    __slots__ = ("_buckets", "_times", "_now", "_seq", "_pending",
                 "_running", "_cancelled", "events_executed", "tracer",
                 "order_log")

    def __init__(self) -> None:
        #: time -> [fifo, fifo_idx, mini-heap]; a bucket exists iff its
        #: time is in ``_times`` (pushed exactly once, on creation).
        self._buckets: dict[int, list[Any]] = {}
        self._times: list[int] = []
        self._now: int = 0
        self._seq: int = 0
        self._pending: int = 0
        self._running = False
        self._cancelled: set[int] = set()
        self.events_executed: int = 0
        self.tracer: Tracer = NULL_TRACER
        #: Same execution-order probe as the heap engine; the dual-run
        #: oracle compares the two logs entry by entry.
        self.order_log: Optional[list[tuple[int, int, int, str]]] = None

    # ------------------------------------------------------------------ #
    @property
    def now(self) -> int:
        """Current simulation time in cycles."""
        return self._now

    def pending(self) -> int:
        """Number of events still queued (cancelled-but-unreaped events
        count until their cycle is reached)."""
        return self._pending

    # ------------------------------------------------------------------ #
    def _enqueue(self, time: int, priority: int, callback: Callback,
                 args: tuple[Any, ...]) -> int:
        self._seq += 1
        seq = self._seq
        bucket = self._buckets.get(time)
        if bucket is None:
            bucket = [[], 0, []]
            self._buckets[time] = bucket
            heapq.heappush(self._times, time)
        if priority == 0:
            bucket[0].append((seq, callback, args))
        else:
            heapq.heappush(bucket[2], (priority, seq, callback, args))
        self._pending += 1
        return seq

    def schedule(self, delay: int, callback: Callback, *args: Any,
                 priority: int = 0) -> int:
        """Schedule *callback(args)* ``delay`` cycles from now; returns a
        handle accepted by :meth:`cancel`."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay}")
        return self._enqueue(self._now + delay, priority, callback, args)

    def schedule_at(self, time: int, callback: Callback, *args: Any,
                    priority: int = 0) -> int:
        """Schedule *callback(args)* at absolute cycle ``time``; returns a
        handle accepted by :meth:`cancel`."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time}, now is {self._now}")
        return self._enqueue(time, priority, callback, args)

    def cancel(self, handle: int) -> None:
        """Lazily cancel a scheduled event; same semantics as
        :meth:`Engine.cancel` (no-op for unknown/executed handles, the
        clock still advances to the cancelled cycle when reaped)."""
        self._cancelled.add(handle)

    # ------------------------------------------------------------------ #
    def _next_event(self, bucket: list[Any]
                    ) -> Optional[tuple[int, int, Callback, tuple[Any, ...]]]:
        """Pop the bucket's next event in global (priority, seq) order, or
        None if the bucket is exhausted.  See the module docstring for the
        merge rule between the priority-0 fifo and the mini-heap."""
        fifo, idx, other = bucket[0], bucket[1], bucket[2]
        if other and other[0][0] < 0:
            prio, seq, callback, args = heapq.heappop(other)
            return prio, seq, callback, args
        if idx < len(fifo):
            bucket[1] = idx + 1
            seq, callback, args = fifo[idx]
            return 0, seq, callback, args
        if other:
            prio, seq, callback, args = heapq.heappop(other)
            return prio, seq, callback, args
        return None

    def run(self, until: int | None = None,
            max_events: int | None = None) -> int:
        """Run until the calendar drains, ``until`` cycles pass, or
        ``max_events`` events execute.  Returns the final time."""
        if self._running:
            raise SimulationError("engine is not reentrant")
        if until is not None and until < self._now:
            raise SimulationError(
                f"cannot run until {until}, now is already {self._now}")
        self._running = True
        if self.tracer.enabled:
            self.tracer.emit(self._now, "engine", "engine.run.begin",
                             until=until, max_events=max_events,
                             pending=self._pending)
        times = self._times
        buckets = self._buckets
        cancelled = self._cancelled
        log = self.order_log
        exhausted = True
        try:
            while times:
                time = times[0]
                if until is not None and time > until:
                    self._now = until
                    exhausted = False
                    break
                bucket = buckets[time]
                fifo = bucket[0]
                other = bucket[2]
                # Drain this cycle's bucket.  The bucket (and its slot in
                # ``times``) stays registered until truly empty, so a
                # budget break mid-bucket resumes correctly and same-cycle
                # schedule() calls from callbacks land in the live bucket.
                # The merge rule below is `_next_event` inlined -- the fifo
                # path must not pay a function call per event (see module
                # docstring for why the rule is order-exact).
                while True:
                    if (max_events is not None
                            and self.events_executed >= max_events):
                        exhausted = False
                        break
                    if other and other[0][0] < 0:
                        prio, seq, callback, args = heapq.heappop(other)
                    elif bucket[1] < len(fifo):
                        idx = bucket[1]
                        bucket[1] = idx + 1
                        seq, callback, args = fifo[idx]
                        prio = 0
                    elif other:
                        prio, seq, callback, args = heapq.heappop(other)
                    else:
                        heapq.heappop(times)
                        del buckets[time]
                        break
                    self._now = time
                    self._pending -= 1
                    if cancelled and seq in cancelled:
                        cancelled.discard(seq)
                        continue
                    self.events_executed += 1
                    if log is not None:
                        log.append((time, prio, seq,
                                    getattr(callback, "__qualname__", "?")))
                    callback(*args)
                if not exhausted:
                    break
            if exhausted and until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False
        if self.tracer.enabled:
            self.tracer.emit(self._now, "engine", "engine.run.end",
                             events=self.events_executed,
                             pending=self._pending)
        return self._now

    def step(self) -> bool:
        """Execute exactly one event.  Returns False if the calendar is
        empty (cancelled events are reaped silently, never "executed")."""
        times = self._times
        buckets = self._buckets
        cancelled = self._cancelled
        while times:
            time = times[0]
            bucket = buckets[time]
            event = self._next_event(bucket)
            if event is None:
                heapq.heappop(times)
                del buckets[time]
                continue
            self._now = time
            self._pending -= 1
            prio, seq, callback, args = event
            if cancelled and seq in cancelled:
                cancelled.discard(seq)
                continue
            self.events_executed += 1
            if self.order_log is not None:
                self.order_log.append((time, prio, seq,
                                       getattr(callback, "__qualname__",
                                               "?")))
            callback(*args)
            return True
        return False
