"""Base class for simulated hardware components."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from .engine import Callback, Engine
from ..common.stats import StatsRegistry
from ..obs.tracer import NULL_TRACER

if TYPE_CHECKING:
    from .fastcore import FastEngine


class Component:
    """A named component bound to the shared engine and stats registry.

    Components communicate only by scheduling events on the shared engine;
    they never call each other synchronously across timing boundaries, which
    keeps every latency explicit.

    ``tracer``/``metrics`` are observability sinks; the chip builder
    replaces them when an :class:`~repro.obs.Observability` bundle is
    active, and every emit site guards on ``tracer.enabled`` /
    ``metrics is not None`` so disabled runs pay one attribute read.
    """

    def __init__(self, engine: "Engine | FastEngine", stats: StatsRegistry,
                 name: str):
        self.engine = engine
        self.stats = stats
        self.name = name
        self.tracer: Any = NULL_TRACER
        self.metrics: Any = None

    @property
    def now(self) -> int:
        return self.engine.now

    def schedule(self, delay: int, callback: Callback, *args: Any,
                 priority: int = 0) -> None:
        self.engine.schedule(delay, callback, *args, priority=priority)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"
