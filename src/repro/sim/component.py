"""Base class for simulated hardware components."""

from __future__ import annotations

from .engine import Engine
from ..common.stats import StatsRegistry


class Component:
    """A named component bound to the shared engine and stats registry.

    Components communicate only by scheduling events on the shared engine;
    they never call each other synchronously across timing boundaries, which
    keeps every latency explicit.
    """

    def __init__(self, engine: Engine, stats: StatsRegistry, name: str):
        self.engine = engine
        self.stats = stats
        self.name = name

    @property
    def now(self) -> int:
        return self.engine.now

    def schedule(self, delay: int, callback, *args, priority: int = 0) -> None:
        self.engine.schedule(delay, callback, *args, priority=priority)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"
