"""Discrete-event simulation kernel."""

from __future__ import annotations

from typing import Union

from .component import Component
from .engine import Engine
from .fastcore import FastEngine
from .trace import (DEFAULT_CAPACITY, NULL_TRACER, ListTracer, RingTracer,
                    TraceEvent, Tracer)

AnyEngine = Union[Engine, FastEngine]

#: Selectable event-engine backends (``CMPConfig.sim_backend``).  "heap"
#: is the reference implementation; "batched" is the bucket-calendar
#: kernel in :mod:`repro.sim.fastcore`, observably identical by the
#: differential-oracle contract.
BACKENDS: dict[str, type] = {"heap": Engine, "batched": FastEngine}


def make_engine(backend: str = "heap") -> AnyEngine:
    """Instantiate the engine backend named *backend*.

    Raises :class:`~repro.common.errors.SimulationError` for unknown
    names so a typo'd config fails at chip construction, not mid-run.
    """
    try:
        cls = BACKENDS[backend]
    except KeyError:
        from ..common.errors import SimulationError
        raise SimulationError(
            f"unknown sim backend {backend!r}; "
            f"choose from {sorted(BACKENDS)}") from None
    engine: AnyEngine = cls()
    return engine


__all__ = ["Component", "Engine", "FastEngine", "AnyEngine", "BACKENDS",
           "make_engine", "NULL_TRACER", "ListTracer", "RingTracer",
           "TraceEvent", "Tracer", "DEFAULT_CAPACITY"]
