"""Discrete-event simulation kernel."""

from .component import Component
from .engine import Engine
from .trace import NULL_TRACER, ListTracer, TraceEvent, Tracer

__all__ = ["Component", "Engine", "NULL_TRACER", "ListTracer",
           "TraceEvent", "Tracer"]
