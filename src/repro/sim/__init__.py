"""Discrete-event simulation kernel."""

from .component import Component
from .engine import Engine
from .trace import (DEFAULT_CAPACITY, NULL_TRACER, ListTracer, RingTracer,
                    TraceEvent, Tracer)

__all__ = ["Component", "Engine", "NULL_TRACER", "ListTracer", "RingTracer",
           "TraceEvent", "Tracer", "DEFAULT_CAPACITY"]
