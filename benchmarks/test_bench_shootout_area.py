"""Bench: software-barrier shoot-out and wire/area comparison.

Extends the paper's baseline set with dissemination and tournament
barriers (checking "one of the best software approaches" rather than
assuming it), and quantifies the related-work area argument: G-lines make
a dedicated barrier network cheap.
"""

from bench_common import run_once, save_and_print
from repro.analysis.report import render_table
from repro.experiments.software_barriers import run_shootout
from repro.gline.area import comparison_rows


def test_bench_software_shootout(benchmark):
    result = run_once(benchmark, run_shootout,
                      core_counts=(4, 8, 16, 32), iterations=20)
    save_and_print("shootout", result.table())

    for cores in (4, 8, 16, 32):
        # GL beats the best software barrier everywhere, by a margin that
        # grows with core count.
        assert result.gl_margin(cores) > 5
    assert result.gl_margin(32) > result.gl_margin(4)
    # The classic result: dissemination <= combining tree <= centralized.
    for cores in (8, 16, 32):
        cpb = result.cycles_per_barrier
        assert cpb["diss"][cores] <= cpb["dsw"][cores]
        assert cpb["dsw"][cores] <= cpb["csw"][cores]
    benchmark.extra_info["gl_margin_32"] = round(result.gl_margin(32), 1)


def test_bench_area(benchmark):
    def build_table():
        rows = []
        for mesh in ((4, 4), (4, 8), (7, 7)):
            for budget in comparison_rows(*mesh):
                rows.append([f"{mesh[0]}x{mesh[1]}", budget.organization,
                             budget.wires, budget.length,
                             budget.max_fanin])
        return render_table(
            ["Mesh", "Organization", "Wires", "Wire length (tile edges)",
             "Max fan-in"], rows,
            title="Barrier-interconnect area comparison")

    table = run_once(benchmark, build_table)
    save_and_print("area", table)
    assert "G-line network" in table
