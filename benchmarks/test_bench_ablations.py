"""Bench: ablation studies (beyond the paper's figures; see DESIGN.md)."""

from bench_common import run_once, save_and_print
from repro.experiments import (contention_ablation, csw_variant_ablation,
                               dsw_arity_sweep, entry_overhead_sweep,
                               hierarchical_latency, noc_model_ablation,
                               period_sweep)


def test_bench_period_sweep(benchmark):
    result = run_once(benchmark, period_sweep, num_cores=16, iterations=15)
    save_and_print("ablation_period_sweep", result.table())
    ratios = [row[3] for row in result.rows]
    # GL's advantage decays monotonically toward 1.0 as work grows.
    assert all(a <= b + 0.02 for a, b in zip(ratios, ratios[1:])), ratios
    assert ratios[0] < 0.2 and ratios[-1] > 0.9


def test_bench_entry_overhead(benchmark):
    result = run_once(benchmark, entry_overhead_sweep, num_cores=16,
                      iterations=40)
    save_and_print("ablation_entry_overhead", result.table())
    per_barrier = [row[1] for row in result.rows]
    # Cost = overhead + write + 4-cycle network, exactly.
    for (overhead, cycles) in [(r[0], r[1]) for r in result.rows]:
        assert cycles == overhead + 1 + 4


def test_bench_hierarchical(benchmark):
    result = run_once(benchmark, hierarchical_latency,
                      core_counts=(16, 49, 64, 144), iterations=25)
    save_and_print("ablation_hierarchical", result.table())
    rows = {r[0]: r for r in result.rows}
    # Flat networks stay at the 5-cycle (write+4) floor; hierarchical
    # meshes pay more but stay within a small constant.
    assert rows[16][3] == 5 and rows[49][3] == 5
    assert 5 < rows[64][3] <= 20
    assert 5 < rows[144][3] <= 24
    assert rows[64][2] == "HierarchicalGLineBarrier"


def test_bench_dsw_arity(benchmark):
    result = run_once(benchmark, dsw_arity_sweep, num_cores=16,
                      iterations=20)
    save_and_print("ablation_dsw_arity", result.table())
    assert len(result.rows) == 3


def test_bench_contention(benchmark):
    result = run_once(benchmark, contention_ablation, num_cores=16,
                      iterations=20)
    save_and_print("ablation_contention", result.table())
    by_key = {(r[0], r[1]): r[2] for r in result.rows}
    # Removing link contention can only speed software barriers up.
    assert by_key[("CSW", "off")] <= by_key[("CSW", "on")]
    assert by_key[("DSW", "off")] <= by_key[("DSW", "on")]


def test_bench_noc_model(benchmark):
    result = run_once(benchmark, noc_model_ablation, num_cores=16,
                      iterations=20)
    save_and_print("ablation_noc_model", result.table())
    by_key = {(r[0], r[1]): r[2] for r in result.rows}
    # The conclusion survives the model swap; GL itself is identical
    # (it never touches the data network).
    assert by_key[("hop", "GL")] == by_key[("vct", "GL")]
    assert by_key[("hop", "GL")] < by_key[("hop", "DSW")]
    assert by_key[("vct", "GL")] < by_key[("vct", "DSW")]


def test_bench_csw_variant(benchmark):
    result = run_once(benchmark, csw_variant_ablation, num_cores=16,
                      iterations=20)
    save_and_print("ablation_csw_variant", result.table())
    by_name = {r[0]: r[1] for r in result.rows}
    # fetch&add beats the lock-protected counter but is still centralized.
    assert by_name["CSW-FA"] < by_name["CSW"]
