"""Bench: stage decomposition (§4.3 S2 analysis) and network energy (§5).

These regenerate the paper's two *explanations* rather than its figures:
why UNSTRUCTURED/OCEAN don't improve (S2-dominated barriers), and why the
conclusion expects power savings (barrier + coherence traffic removed from
the data network at negligible G-line cost).
"""

from bench_common import bench_cores, bench_scale, run_once, save_and_print
from repro.experiments import run_energy, run_stages


def test_bench_stages(benchmark):
    result = run_once(benchmark, run_stages, num_cores=bench_cores(),
                      scale=bench_scale())
    save_and_print("stages", result.table())

    # The paper's observation: the applications that don't improve are the
    # S2 (imbalance)-dominated ones -- under GL as well, since a faster
    # mechanism cannot remove workload imbalance.
    assert result.s2_share("UNSTR", "GL") > 0.8
    assert result.s2_share("OCEAN", "GL") > 0.5
    # Fine-grain kernels under DSW spend real time in the mechanism...
    assert result.s2_share("KERN3", "DSW") < 0.6
    # ...and GL collapses mechanism time for every benchmark.
    for name in ("KERN2", "KERN3", "KERN6", "UNSTR", "OCEAN", "EM3D"):
        gl = result.s2_share(name, "GL")
        dsw = result.s2_share(name, "DSW")
        assert gl >= dsw - 0.05, (name, gl, dsw)


def test_bench_energy(benchmark):
    result = run_once(benchmark, run_energy, num_cores=bench_cores(),
                      scale=bench_scale())
    text = result.table() + (
        f"\naverage network-energy reduction: "
        f"{result.average_reduction() * 100:.1f}%   "
        f"G-line share of GL energy: {result.gline_share() * 100:.2f}%")
    save_and_print("energy", text)

    assert result.average_reduction() > 0.15
    assert result.gline_share() < 0.05
    benchmark.extra_info["avg_energy_reduction"] = round(
        result.average_reduction(), 3)
