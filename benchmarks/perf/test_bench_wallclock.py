"""Golden wall-clock regression tests.

Reruns every quick-mode bench case and gates its calibration-normalized
events/sec against the committed ``BENCH_<name>.json`` baseline: a drop
of more than 25% on either backend fails.  Normalization (scores are
events/sec divided by a pure-Python reference loop timed on the same
machine, same run) makes the committed numbers portable across hosts --
only *relative* engine slowdowns trip the gate, not a slower CI box.

Deliberately outside the tier-1 ``tests/`` tree (wall-clock tests do not
belong in a correctness gate).  Run with::

    PYTHONPATH=src python -m pytest benchmarks/perf/

When a slowdown is intentional (or the cases changed shape), refresh the
baselines::

    PYTHONPATH=src python -m repro bench --quick --write

Tests skip cleanly when a baseline file is absent or was generated from
different work (so a case redefinition fails loudly in ``--check`` CI
mode but does not break a local perf run mid-refactor).
"""

from pathlib import Path

import pytest

from repro.bench import CASES, calibrate, compare_snapshots, load_snapshot
from repro.bench.runner import (DEFAULT_TOLERANCE, BenchError,
                                BenchSnapshot, config_digest, run_case)

PERF_DIR = Path(__file__).resolve().parent


@pytest.fixture(scope="module")
def calibration_eps():
    return calibrate()


@pytest.mark.parametrize("name", sorted(CASES))
def test_quick_case_within_tolerance_of_baseline(name, calibration_eps):
    baseline = load_snapshot(name, PERF_DIR)
    if baseline is None:
        pytest.skip(f"no committed baseline BENCH_{name}.json")
    case = CASES[name]
    current = BenchSnapshot(name=name, quick=True,
                            config_digest=config_digest(case, quick=True))
    for backend in sorted(baseline.backends):
        current.backends[backend] = run_case(
            case, backend, quick=True, repeats=2,
            calibration_eps=calibration_eps)
    try:
        comparisons = compare_snapshots(current, baseline,
                                        tolerance=DEFAULT_TOLERANCE)
    except BenchError as exc:
        pytest.skip(f"baseline is stale ({exc}); refresh with "
                    f"'repro bench --quick --write'")
    assert comparisons, "baseline present but no comparable backends"
    regressed = [c.summary() for c in comparisons if c.regressed]
    assert not regressed, "\n".join(regressed)


def test_batched_backend_not_dramatically_slower_than_heap(
        calibration_eps):
    """The batched kernel must stay in the same performance class as the
    reference heap engine end-to-end (it wins on dense-bucket event loops
    and roughly ties on sparse chip workloads; a large end-to-end loss
    would mean the backend stopped paying for itself)."""
    case = CASES["fig5"]
    heap = run_case(case, "heap", quick=True, repeats=2,
                    calibration_eps=calibration_eps)
    batched = run_case(case, "batched", quick=True, repeats=2,
                       calibration_eps=calibration_eps)
    assert batched.events == heap.events
    assert batched.events_per_sec > 0.6 * heap.events_per_sec
