"""Shared benchmark-harness utilities.

Every bench regenerates one of the paper's tables/figures, prints it, and
saves the rendered output under ``results/``.  Scale and core count are
controlled by environment variables so CI can run the harness quickly:

* ``REPRO_BENCH_SCALE`` -- iteration-count multiplier (default 0.5).
* ``REPRO_BENCH_CORES`` -- chip size for Figures 6/7 and Table 2
  (default 32, the paper's configuration).

Benches run single-shot (``pedantic(rounds=1)``): the interesting numbers
are the *simulated* metrics (cycles, messages), which are deterministic;
wall-clock time of the simulator itself is secondary and still recorded by
pytest-benchmark.
"""

from __future__ import annotations

import os
from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))


def bench_cores() -> int:
    return int(os.environ.get("REPRO_BENCH_CORES", "32"))


def save_and_print(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print()
    print(text)
    print(f"[saved to {path}]")


def run_once(benchmark, fn, *args, **kwargs):
    """Run *fn* exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)
