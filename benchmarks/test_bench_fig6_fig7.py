"""Bench: regenerate Figures 6 and 7 (normalized execution time and
network traffic, DSW vs GL, 32 cores).

One paired run per benchmark feeds both figures.  Shape checks follow the
paper's quoted numbers:

* kernels improve a lot, applications a little (Fig 6);
* Kernel 3's traffic nearly vanishes; UNSTR/OCEAN traffic barely moves
  (Fig 7);
* per-figure orderings match the paper's bars.
"""

from bench_common import (bench_cores, bench_scale, run_once,
                          save_and_print)
from repro.analysis.figures import fig6_chart, fig7_chart
from repro.experiments import run_fig6_and_fig7


def test_bench_fig6_and_fig7(benchmark):
    fig6, fig7 = run_once(benchmark, run_fig6_and_fig7,
                          num_cores=bench_cores(), scale=bench_scale())
    save_and_print("fig6", fig6.table() + "\n\n" + fig6.stacked_table()
                   + "\n\n" + fig6_chart(fig6.comparisons))
    save_and_print("fig7", fig7.table() + "\n\n" + fig7.stacked_table()
                   + "\n\n" + fig7_chart(fig7.comparisons))

    from repro.analysis.validation import (all_passed, render_checklist,
                                           validate_all)
    checks = validate_all(fig6=fig6, fig7=fig7)
    save_and_print("fig6_fig7_checks", render_checklist(checks))
    assert all_passed(checks), render_checklist(checks)

    t = {n: c.normalized_treated_total for n, c in fig6.comparisons.items()}
    m = {n: c.normalized_treated_total for n, c in fig7.comparisons.items()}

    # --- Figure 6 shape ------------------------------------------------ #
    # Kernels: big wins (paper avg 68% reduction).
    assert fig6.avg_k < 0.55
    # Applications: modest wins (paper avg 21% reduction).
    assert 0.6 < fig6.avg_a < 1.0
    # Per-benchmark ordering matches the paper's bars:
    assert t["KERN3"] < t["KERN2"] < t["KERN6"], t
    assert t["EM3D"] < min(t["UNSTR"], t["OCEAN"]), t
    # UNSTR and OCEAN barely improve (S2-dominated / huge period).
    assert t["UNSTR"] > 0.85 and t["OCEAN"] > 0.85

    # --- Figure 7 shape ------------------------------------------------ #
    assert fig7.avg_k < 0.5
    assert fig7.avg_a < 1.0
    assert m["KERN3"] < 0.1          # paper: 99.82% reduction
    assert m["KERN3"] < m["KERN2"] < m["KERN6"], m
    assert m["EM3D"] < min(m["UNSTR"], m["OCEAN"]), m
    assert m["UNSTR"] > 0.8 and m["OCEAN"] > 0.8

    benchmark.extra_info["fig6_gl_over_dsw"] = {k: round(v, 3)
                                                for k, v in t.items()}
    benchmark.extra_info["fig7_gl_over_dsw"] = {k: round(v, 3)
                                                for k, v in m.items()}
