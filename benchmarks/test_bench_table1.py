"""Bench: regenerate Table 1 (CMP baseline configuration)."""

from bench_common import run_once, save_and_print
from repro.experiments import matches_paper, run_table1


def test_bench_table1(benchmark):
    table = run_once(benchmark, run_table1)
    save_and_print("table1", table)
    assert matches_paper()
    benchmark.extra_info["matches_paper"] = True
