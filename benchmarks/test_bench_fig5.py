"""Bench: regenerate Figure 5 (avg time per barrier vs core count).

Shape checks (the paper's log-scale figure): CSW > DSW > GL at every core
count; CSW and DSW grow with cores; GL stays flat at ~13 cycles.
"""

import os

from bench_common import run_once, save_and_print
from repro.analysis import paper_data
from repro.analysis.figures import fig5_chart
from repro.experiments import run_fig5


def test_bench_fig5(benchmark):
    iterations = int(os.environ.get("REPRO_FIG5_ITERS", "40"))
    result = run_once(benchmark, run_fig5,
                      core_counts=paper_data.FIG5_CORE_COUNTS,
                      iterations=iterations)
    save_and_print("fig5", result.table() + "\n\n"
                   + fig5_chart(result.cycles_per_barrier))

    from repro.analysis.validation import (all_passed, check_fig5,
                                           render_checklist)
    checks = check_fig5(result)
    save_and_print("fig5_checks", render_checklist(checks))
    assert all_passed(checks), render_checklist(checks)

    assert result.is_ordered(), "CSW > DSW > GL must hold at every size"
    gl = result.cycles_per_barrier["gl"]
    csw = result.cycles_per_barrier["csw"]
    dsw = result.cycles_per_barrier["dsw"]
    # GL flat at the paper's 13 cycles.
    assert all(abs(v - paper_data.FIG5_GL_CYCLES) <= 1
               for v in gl.values()), gl
    # Software barriers degrade with core count; CSW degrades faster.
    assert csw[32] > csw[4] * 4
    assert dsw[32] > dsw[4]
    assert csw[32] / dsw[32] > csw[4] / dsw[4]
    benchmark.extra_info["gl_cycles"] = gl
