"""Bench: platform-sensitivity sweeps (robustness of the conclusion)."""

from bench_common import run_once, save_and_print
from repro.experiments import (gl_is_platform_insensitive,
                               l2_latency_sweep, memory_latency_sweep,
                               router_latency_sweep)


def _run(benchmark, fn, name):
    result = run_once(benchmark, fn, num_cores=16, iterations=20)
    save_and_print(name, result.table())
    assert gl_is_platform_insensitive(result)
    dsw = [row[1] for row in result.rows]
    assert dsw == sorted(dsw) and dsw[-1] > dsw[0]
    return result


def test_bench_memory_latency(benchmark):
    _run(benchmark, memory_latency_sweep, "sensitivity_memory")


def test_bench_router_latency(benchmark):
    _run(benchmark, router_latency_sweep, "sensitivity_router")


def test_bench_l2_latency(benchmark):
    _run(benchmark, l2_latency_sweep, "sensitivity_l2")
