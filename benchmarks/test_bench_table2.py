"""Bench: regenerate Table 2 (#barriers and barrier period per benchmark).

Shape checks: the measured period ordering must separate the fine-grain
benchmarks (synthetic, kernels, EM3D) from the coarse applications
(UNSTRUCTURED, OCEAN) -- the property the paper's whole evaluation story
rests on.
"""

from bench_common import bench_cores, bench_scale, run_once, save_and_print
from repro.experiments import run_table2


def test_bench_table2(benchmark):
    result = run_once(benchmark, run_table2, num_cores=bench_cores(),
                      scale=bench_scale())
    save_and_print("table2", result.table())

    from repro.analysis.validation import (all_passed, check_table2,
                                           render_checklist)
    checks = check_table2(result)
    save_and_print("table2_checks", render_checklist(checks))
    assert all_passed(checks), render_checklist(checks)

    periods = {r.info.name: r.measured_period for r in result.rows}
    # Applications are the coarsest-grain benchmarks, as in the paper.
    for app in ("OCEAN", "UNSTR"):
        for fine in ("Synthetic", "KERN2", "KERN3", "EM3D"):
            assert periods[app] > periods[fine], \
                f"{app} period should exceed {fine}"
    # Barrier counts match each workload's declared structure.
    for row in result.rows:
        assert row.measured_barriers == row.info.num_barriers
    benchmark.extra_info["periods"] = {k: round(v) for k, v
                                       in periods.items()}
