"""Setup shim: enables legacy editable installs (``pip install -e .``) in
environments without the ``wheel`` package (no ``bdist_wheel``)."""

from setuptools import setup

setup()
