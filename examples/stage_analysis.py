#!/usr/bin/env python3
"""Why don't UNSTRUCTURED and OCEAN benefit from a 4-cycle barrier?

The paper's answer (§4.3): their barrier latency is dominated by the S2
stage -- waiting for stragglers, i.e. workload imbalance -- which no
barrier mechanism can remove.  This example decomposes barrier time into
S2 (wait) vs S1+S3 (mechanism) for a balanced kernel and an imbalanced
application, under both DSW and GL, and then shows the imbalance knob
directly by sweeping UNSTRUCTURED's partition skew.

Usage:  python examples/stage_analysis.py
"""

from repro.analysis.report import pct, render_table
from repro.experiments import run_stages
from repro.experiments.runner import run_benchmark
from repro.experiments.stages import decompose
from repro.workloads import Kernel3Workload, UnstructuredWorkload


def main() -> None:
    print("running stage decomposition (KERN3 vs UNSTRUCTURED, 16 cores)")
    result = run_stages(num_cores=16, workloads={
        "KERN3": Kernel3Workload(iterations=40),
        "UNSTR": UnstructuredWorkload(phases=6),
    })
    print()
    print(result.table())
    print()
    print(f"KERN3 under DSW is mechanism-dominated "
          f"(S2 share {pct(result.s2_share('KERN3', 'DSW'))}), so the "
          f"hardware barrier helps enormously.")
    print(f"UNSTR stays S2-dominated even under GL "
          f"({pct(result.s2_share('UNSTR', 'GL'))}): imbalance is a "
          f"workload property.")

    print()
    print("sweeping UNSTRUCTURED's partition skew (GL, 16 cores):")
    from repro.common.stats import CycleCat
    rows = []
    for skew in (0.0, 0.2, 0.45, 0.7):
        run = run_benchmark(UnstructuredWorkload(phases=4, skew=skew),
                            "gl", num_cores=16)
        s2, sync = decompose(run)
        busy = [run.stats.core_cycle_breakdown(c)[CycleCat.BUSY]
                for c in range(16)]
        rows.append([skew, run.total_cycles, max(busy) - min(busy),
                     pct(s2 / (s2 + sync) if s2 + sync else 0)])
    print(render_table(
        ["Skew", "Total cycles", "Busy spread (max-min)", "S2 share"],
        rows))
    print()
    print("The busy-time spread widens with skew; the S2 share is already")
    print("saturated even at skew 0 because the mesh's irregular access")
    print("costs make arrivals ragged on their own -- which is exactly why")
    print("a faster barrier cannot rescue this class of application.")


if __name__ == "__main__":
    main()
