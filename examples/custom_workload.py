#!/usr/bin/env python3
"""Writing your own workload, and using multiple barrier contexts.

Demonstrates the operation-level programming model: a pipelined producer/
consumer stencil where even and odd phases synchronize on *different*
barrier contexts (the paper's space-multiplexing extension), plus a
lock-protected reduction.

Usage:  python examples/custom_workload.py
"""

from repro import CMP, CMPConfig
from repro.common.params import GLineConfig
from repro.cpu import isa
from repro.mem.address import WORD_BYTES
from repro.workloads.base import Workload, WorkloadInfo, chunk_bounds


class PipelinedStencil(Workload):
    """Two-phase stencil: compute on A->B (barrier 0), B->A (barrier 1)."""

    name = "PipelinedStencil"

    def __init__(self, n: int = 2048, steps: int = 10):
        self.n = n
        self.steps = steps

    def programs(self, chip):
        a = chip.allocator.alloc_array(self.n)
        b = chip.allocator.alloc_array(self.n)
        total = chip.allocator.alloc_line(home=0)
        lock = chip.allocator.alloc_line(home=0)
        ncores = chip.num_cores
        self.total_addr = total  # so callers can read the reduced value

        def program(cid):
            lo, hi = chunk_bounds(self.n - 2, ncores, cid)
            for step in range(self.steps):
                src, dst = (a, b) if step % 2 == 0 else (b, a)
                acc = 0
                for i in range(lo + 1, hi + 1):
                    left = yield isa.Load(src + WORD_BYTES * (i - 1))
                    right = yield isa.Load(src + WORD_BYTES * (i + 1))
                    yield isa.Compute(3)
                    yield isa.Store(dst + WORD_BYTES * i,
                                    (left + right) // 2)
                    acc += 1
                # Alternate between the two hardware barrier contexts.
                yield isa.BarrierOp(step % 2)
            # Final lock-protected reduction of per-core element counts.
            yield isa.AcquireLock(lock)
            value = yield isa.Load(total)
            yield isa.Store(total, value + acc)
            yield isa.ReleaseLock(lock)

        return [program(c) for c in range(ncores)]

    def info(self):
        return WorkloadInfo(self.name, f"{self.n} points, "
                            f"{self.steps} steps",
                            self.steps, 0, 0)


def main() -> None:
    cfg = CMPConfig.for_cores(16).with_(
        gline=GLineConfig(num_barriers=2))   # two barrier contexts
    chip = CMP(cfg, barrier="gl")
    wl = PipelinedStencil()
    result = chip.run(wl)

    print(result.summary())
    print()
    ctx0, ctx1 = chip.barrier_impl.networks
    print(f"context 0 completed {ctx0.barriers_completed} barriers, "
          f"context 1 completed {ctx1.barriers_completed}")
    print(f"total G-lines provisioned: "
          f"{ctx0.num_glines + ctx1.num_glines}")
    print(f"stencil points processed per step (lock-protected reduction): "
          f"{chip.funcmem.load(wl.total_addr)}")


if __name__ == "__main__":
    main()
