#!/usr/bin/env python3
"""EM3D: traffic and network-energy comparison (Figure 7 + §5's power
argument).

EM3D is the paper's best application case (barrier period 3,673 cycles):
GL cuts its execution time by ~54% and its network traffic by ~51%.  This
example reproduces the traffic split by message category and adds the
first-order network-energy estimate the paper's conclusion appeals to.

Usage:  python examples/em3d_traffic.py
"""

from repro.analysis.energy import estimate, reduction
from repro.analysis.report import pct, render_table
from repro.analysis.traffic import Traffic, TrafficComparison
from repro.experiments.runner import compare
from repro.workloads import EM3DWorkload


def main() -> None:
    wl = EM3DWorkload(nodes=3840, steps=4)
    print(f"running EM3D ({wl.info().input_size}) under DSW and GL...")
    comp = compare(wl, num_cores=32)

    tc = TrafficComparison(
        "EM3D",
        Traffic.from_result("DSW", comp.baseline),
        Traffic.from_result("GL", comp.treated))
    print()
    print(render_table(
        ["category", "DSW msgs", "GL msgs"],
        [[cat.value, tc.baseline.messages.get(cat, 0),
          tc.treated.messages.get(cat, 0)]
         for cat in tc.baseline.messages],
        title="EM3D network messages by category"))
    print()
    print(f"traffic: GL/DSW = {tc.normalized_treated_total:.2f} "
          f"(reduction {pct(tc.traffic_reduction)}; paper: ~51%)")
    print(f"time:    GL/DSW = {comp.time_ratio:.2f} "
          f"(reduction {pct(1 - comp.time_ratio)}; paper: ~54%)")

    e_dsw = estimate("DSW", comp.baseline)
    e_gl = estimate("GL", comp.treated)
    print()
    print(render_table(
        ["impl", "link energy", "router energy", "G-line energy", "total"],
        [[e.label, e.link_energy, e.router_energy, e.gline_energy,
          e.total] for e in (e_dsw, e_gl)],
        title="First-order network energy (arbitrary units)"))
    print(f"network-energy reduction: {pct(reduction(e_dsw, e_gl))} "
          f"(the dedicated G-line network's toggles are negligible)")


if __name__ == "__main__":
    main()
