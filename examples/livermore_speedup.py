#!/usr/bin/env python3
"""Livermore kernels under software vs hardware barriers (Figure 6 style).

Runs Kernels 2, 3 and 6 at 32 cores under DSW and GL, printing the
normalized execution-time breakdown (Barrier / Write / Read / Lock / Busy)
for each -- the left half of the paper's Figure 6.

Usage:  python examples/livermore_speedup.py [scale]
        scale < 1 shrinks iteration counts (default 0.25).
"""

import sys

from repro.analysis.breakdown import Breakdown, BreakdownComparison
from repro.analysis.report import pct, render_bar, render_table
from repro.experiments.runner import compare
from repro.workloads import (Kernel2Workload, Kernel3Workload,
                             Kernel6Workload)


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.25
    kernels = {
        "KERN2": Kernel2Workload(iterations=max(1, int(30 * scale))),
        "KERN3": Kernel3Workload(iterations=max(1, int(150 * scale))),
        "KERN6": Kernel6Workload(n=128, iterations=max(1, int(3 * scale))),
    }
    rows = []
    for name, wl in kernels.items():
        print(f"running {name} (DSW + GL)...", flush=True)
        comp = compare(wl, num_cores=32)
        bd = BreakdownComparison(
            name,
            Breakdown.from_result("DSW", comp.baseline),
            Breakdown.from_result("GL", comp.treated))
        rows.append([name, bd.normalized_treated_total,
                     pct(bd.time_reduction),
                     render_bar(bd.normalized_treated_total, width=30)])
        print(render_table(
            ["category", "DSW", "GL"],
            [[cat, f"{b:.2f}", f"{t:.2f}"] for cat, b, t in bd.rows()],
            title=f"  {name} breakdown (normalized to DSW total)"))
        print()
    print(render_table(
        ["Kernel", "GL/DSW time", "Reduction", "GL bar"],
        rows, title="Kernel execution time, GL normalized to DSW"))
    print()
    print("Paper (full scale): KERN2 -70%, KERN3 -88%, KERN6 -47%.")


if __name__ == "__main__":
    main()
