#!/usr/bin/env python3
"""Quickstart: build a 16-core chip and compare barrier implementations.

Runs the paper's synthetic barrier microbenchmark under the centralized
software barrier (CSW), the combining-tree barrier (DSW) and the G-line
hardware barrier (GL), then prints average cycles per barrier and the
traffic each produced -- a miniature Figure 5.

Usage:  python examples/quickstart.py [num_cores]
"""

import sys

from repro import CMP, CMPConfig
from repro.analysis.report import render_table
from repro.workloads import SyntheticBarrierWorkload


def main() -> None:
    num_cores = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    rows = []
    for barrier in ("csw", "dsw", "gl"):
        chip = CMP(CMPConfig.for_cores(num_cores), barrier=barrier)
        result = chip.run(SyntheticBarrierWorkload(iterations=100))
        rows.append([
            barrier.upper(),
            result.total_cycles / result.num_barriers(),
            result.avg_barrier_latency(),
            result.total_messages(),
        ])
        if barrier == "gl":
            impl = chip.barrier_impl
            print(f"G-line network: {impl.describe()}")
    print()
    print(render_table(
        ["Barrier", "Cycles/barrier", "Last-arrival latency", "Messages"],
        rows,
        title=f"Synthetic barrier benchmark, {num_cores} cores "
              f"(400 barriers)"))
    print()
    print("The G-line barrier is flat, cheap and generates zero traffic on")
    print("the main data network -- the paper's headline result.")


if __name__ == "__main__":
    main()
