#!/usr/bin/env python3
"""Scaling beyond 7x7: hierarchical (clustered) G-line barrier networks.

The paper's future work proposes linking G-line networks through
additional G-lines to pass the 7x7 S-CSMA limit.  This example builds
chips from 16 to 256 cores, reports which organization each uses, the
hardware barrier latency, and the total wire budget -- then contrasts with
the combining-tree software barrier at each size.

Usage:  python examples/hierarchical_scaling.py
"""

from repro import CMPConfig, StatsRegistry, mesh_dims
from repro.analysis.report import render_table
from repro.chip import CMP
from repro.common.params import GLineConfig
from repro.gline.multibarrier import build_contexts
from repro.sim.engine import Engine
from repro.workloads import SyntheticBarrierWorkload


def main() -> None:
    rows = []
    for cores in (16, 49, 64, 144, 256):
        r, c = mesh_dims(cores)
        gline = GLineConfig(entry_overhead=0)
        cfg = CMPConfig.for_cores(cores).with_(gline=gline)

        # Inspect the organization the builder picks.
        ctx = build_contexts(Engine(), StatsRegistry(cores), r, c, gline)[0]
        organization = type(ctx).__name__.replace("GLineBarrier", "") \
            .replace("Network", "flat")

        per_barrier = {}
        for barrier in ("gl", "dsw"):
            chip = CMP(cfg, barrier=barrier)
            result = chip.run(SyntheticBarrierWorkload(iterations=25))
            per_barrier[barrier] = result.total_cycles / \
                result.num_barriers()
        rows.append([cores, f"{r}x{c}", organization, ctx.num_glines,
                     per_barrier["gl"], per_barrier["dsw"],
                     per_barrier["dsw"] / per_barrier["gl"]])

    print(render_table(
        ["Cores", "Mesh", "GL organization", "G-lines", "GL cyc/bar",
         "DSW cyc/bar", "DSW/GL"],
        rows,
        title="Barrier latency scaling (entry overhead removed)"))
    print()
    print("Flat networks hold the 5-cycle floor (1-cycle bar_reg write +")
    print("4-cycle synchronization); clustered networks add a handful of")
    print("cycles while the software tree keeps growing with log(N) and")
    print("contention -- the wire budget stays linear in mesh rows.")


if __name__ == "__main__":
    main()
