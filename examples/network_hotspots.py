#!/usr/bin/env python3
"""Where do software barriers hammer the mesh?

Runs the synthetic barrier benchmark under CSW, DSW and GL on a 16-core
chip and prints, for each, the busiest links and an ASCII router-traffic
heatmap.  CSW concentrates traffic around the central counter's home
tile; DSW spreads it across the tree-node homes; GL leaves the mesh dark.

Usage:  python examples/network_hotspots.py
"""

from repro import CMP, CMPConfig
from repro.analysis.netreport import (hotspot_table, tile_heatmap,
                                      total_flit_hops)
from repro.workloads import SyntheticBarrierWorkload


def main() -> None:
    for barrier in ("csw", "dsw", "gl"):
        chip = CMP(CMPConfig.for_cores(16), barrier=barrier)
        result = chip.run(SyntheticBarrierWorkload(iterations=50))
        print(f"=== {barrier.upper()} "
              f"({result.total_messages()} messages, "
              f"{total_flit_hops(chip.network)} flit-hops) ===")
        print(tile_heatmap(chip.network))
        if result.total_messages():
            print(hotspot_table(chip.network, top=5))
        else:
            print("(no data-network traffic at all)")
        print()


if __name__ == "__main__":
    main()
