"""Set-associative cache array tests."""

import pytest

from repro.common.errors import SimulationError
from repro.common.params import CacheConfig
from repro.mem.cache import CacheArray, MESI


def small_cache(assoc=2, sets=2):
    return CacheArray(CacheConfig(size_bytes=assoc * sets * 64,
                                  assoc=assoc, line_bytes=64))


def line_for_set(cache, set_idx, k):
    """k-th distinct line address mapping to *set_idx*."""
    return (set_idx + k * cache.num_sets) * 64


def test_insert_and_lookup():
    c = small_cache()
    a = line_for_set(c, 0, 0)
    assert c.lookup(a) is None
    c.insert(a, MESI.S)
    entry = c.lookup(a)
    assert entry is not None and entry.state is MESI.S


def test_probe_does_not_touch_lru():
    c = small_cache(assoc=2)
    a, b, d = (line_for_set(c, 0, k) for k in range(3))
    c.insert(a, MESI.S)
    c.insert(b, MESI.S)
    c.probe(a)            # must NOT refresh a
    victim = c.insert(d, MESI.S)
    assert victim.line_addr == a


def test_lru_eviction_order():
    c = small_cache(assoc=2)
    a, b, d = (line_for_set(c, 0, k) for k in range(3))
    c.insert(a, MESI.S)
    c.insert(b, MESI.S)
    c.lookup(a)           # a becomes MRU
    victim = c.insert(d, MESI.S)
    assert victim.line_addr == b
    assert c.lookup(a) is not None
    assert c.lookup(b) is None


def test_victim_carries_state():
    c = small_cache(assoc=1)
    a, b = (line_for_set(c, 0, k) for k in range(2))
    c.insert(a, MESI.M)
    victim = c.insert(b, MESI.S)
    assert victim.state is MESI.M
    assert victim.dirty


def test_insert_existing_updates_in_place():
    c = small_cache()
    a = line_for_set(c, 0, 0)
    c.insert(a, MESI.S)
    assert c.insert(a, MESI.M) is None
    assert c.probe(a) is MESI.M
    assert c.occupancy() == 1


def test_different_sets_do_not_conflict():
    c = small_cache(assoc=1, sets=2)
    a0 = line_for_set(c, 0, 0)
    a1 = line_for_set(c, 1, 0)
    c.insert(a0, MESI.S)
    assert c.insert(a1, MESI.S) is None
    assert c.occupancy() == 2


def test_set_state_and_invalidate():
    c = small_cache()
    a = line_for_set(c, 0, 0)
    c.insert(a, MESI.E)
    c.set_state(a, MESI.S)
    assert c.probe(a) is MESI.S
    assert c.invalidate(a) is MESI.S
    assert c.probe(a) is MESI.I
    assert c.invalidate(a) is MESI.I  # idempotent


def test_set_state_to_I_drops_line():
    c = small_cache()
    a = line_for_set(c, 0, 0)
    c.insert(a, MESI.M)
    c.set_state(a, MESI.I)
    assert c.lookup(a) is None


def test_set_state_absent_raises():
    c = small_cache()
    with pytest.raises(SimulationError):
        c.set_state(line_for_set(c, 0, 0), MESI.M)


def test_insert_invalid_state_raises():
    c = small_cache()
    with pytest.raises(SimulationError):
        c.insert(0, MESI.I)


def test_mesi_properties():
    assert MESI.M.exclusive and MESI.E.exclusive
    assert not MESI.S.exclusive and not MESI.I.exclusive
    assert MESI.S.valid and not MESI.I.valid


def test_resident_lines_and_counters():
    c = small_cache()
    a = line_for_set(c, 0, 0)
    b = line_for_set(c, 1, 0)
    c.insert(a, MESI.S)
    c.insert(b, MESI.E)
    assert c.resident_lines() == sorted([a, b])
    c.record_hit()
    c.record_miss()
    assert (c.hits, c.misses) == (1, 1)
