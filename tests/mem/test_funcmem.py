"""Functional memory image tests."""

from repro.mem.address import AddressMap
from repro.mem.funcmem import FunctionalMemory


def test_default_zero():
    mem = FunctionalMemory()
    assert mem.load(0x1000) == 0


def test_store_load_round_trip():
    mem = FunctionalMemory()
    mem.store(0x1000, 42)
    assert mem.load(0x1000) == 42


def test_word_granularity_aliasing():
    mem = FunctionalMemory()
    mem.store(0x1000, 7)
    # Any byte address within the word reads the same value.
    assert mem.load(0x1003) == 7
    mem.store(0x1007, 9)
    assert mem.load(0x1000) == 9
    # The next word is distinct.
    assert mem.load(0x1008) == 0


def test_rmw_returns_old_and_new():
    mem = FunctionalMemory()
    mem.store(0x20, 5)
    old, new = mem.rmw(0x20, lambda v: v + 3)
    assert (old, new) == (5, 8)
    assert mem.load(0x20) == 8


def test_array_helpers():
    mem = FunctionalMemory()
    mem.store_array(0x100, [1, 2, 3])
    assert mem.load_array(0x100, 3) == [1, 2, 3]
    assert mem.load_array(0x100, 4) == [1, 2, 3, 0]


def test_words_in_line():
    mem = FunctionalMemory()
    amap = AddressMap(num_tiles=2, line_bytes=64)
    mem.store(64, 11)
    mem.store(64 + 56, 22)
    words = mem.words_in_line(amap, 70)
    assert len(words) == 8
    assert words[0] == 11
    assert words[7] == 22
