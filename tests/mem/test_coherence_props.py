"""Property-based coherence tests.

Random multi-core access sequences must leave the timing state (L1 arrays,
directory) consistent at quiescence:

* SWMR: a line with an exclusive (E/M) copy in some L1 has no other valid
  copy anywhere.
* Directory agreement: an EM directory entry's owner actually holds the
  line exclusively; every valid L1 copy of an S entry is a registered
  sharer (silent S evictions make the sharer list a superset).
* Atomic increments never lose updates (the functional/timing split plus
  protocol serialization).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import make_chip
from repro.cpu import isa
from tests_mem_props_shim import check_quiescent_consistency


ops_strategy = st.lists(
    st.tuples(
        st.integers(0, 3),                  # core
        st.sampled_from(["load", "store", "atomic"]),
        st.integers(0, 5),                  # which shared word
        st.integers(0, 60),                 # pre-delay
    ),
    min_size=1, max_size=40,
)


@settings(max_examples=40, deadline=None)
@given(ops=ops_strategy)
def test_random_access_sequences_stay_coherent(ops):
    chip = make_chip(4)
    words = [chip.allocator.alloc_line() for _ in range(6)]
    per_core: dict[int, list] = {c: [] for c in range(4)}
    for core, kind, word, delay in ops:
        per_core[core].append((kind, words[word], delay))

    def prog(cid):
        for kind, addr, delay in per_core[cid]:
            if delay:
                yield isa.Compute(delay)
            if kind == "load":
                yield isa.Load(addr)
            elif kind == "store":
                yield isa.Store(addr, cid + 1)
            else:
                yield isa.FetchAdd(addr, 1)

    chip.run([prog(c) for c in range(4)])
    check_quiescent_consistency(chip)


@settings(max_examples=20, deadline=None)
@given(increments=st.lists(st.integers(1, 20), min_size=2, max_size=4),
       stagger=st.lists(st.integers(0, 100), min_size=4, max_size=4))
def test_atomic_increments_never_lost(increments, stagger):
    chip = make_chip(4)
    counter = chip.allocator.alloc_line()
    counts = (increments * 4)[:4]

    def prog(cid):
        yield isa.Compute(stagger[cid])
        for _ in range(counts[cid]):
            yield isa.FetchAdd(counter, 1)

    chip.run([prog(c) for c in range(4)])
    assert chip.funcmem.load(counter) == sum(counts)
    check_quiescent_consistency(chip)


@settings(max_examples=20, deadline=None)
@given(n_writers=st.integers(1, 4), readers_delay=st.integers(0, 500))
def test_last_writer_wins_is_observed_by_all(n_writers, readers_delay):
    """After all stores quiesce, every core loads the same final value."""
    chip = make_chip(4)
    flag = chip.allocator.alloc_line()
    finals = {}

    def writer(cid):
        yield isa.Compute(cid * 40)
        yield isa.Store(flag, cid + 100)

    def reader(cid):
        yield isa.Compute(5_000 + readers_delay)  # after all writers
        finals[cid] = (yield isa.Load(flag))

    progs = []
    for c in range(4):
        progs.append(writer(c) if c < n_writers else reader(c))
    chip.run(progs)
    assert len(set(finals.values())) <= 1  # all readers agree
    check_quiescent_consistency(chip)
