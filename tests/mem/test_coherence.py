"""Directory coherence protocol tests (scripted interleavings).

These drive the real L1s / homes / NoC of a small chip directly, asserting
both the data results (functional correctness) and the timing-model state
(MESI states, directory contents, message categories).
"""

import pytest

from helpers import MemHarness, make_chip
from repro.common.stats import MsgCat
from repro.mem.cache import MESI
from repro.mem.directory import DirState


@pytest.fixture
def h():
    return MemHarness(make_chip(num_cores=4))


def addr_homed(chip, home, k=0):
    """An address whose home directory is tile *home*."""
    return (home + k * chip.num_cores) * 64


# ---------------------------------------------------------------------- #
# Basic flows
# ---------------------------------------------------------------------- #
def test_load_returns_stored_value_cross_core(h):
    a = addr_homed(h.chip, 2)
    h.store(0, a, 99)
    assert h.load(1, a) == 99


def test_first_load_installs_exclusive(h):
    a = addr_homed(h.chip, 1)
    h.load(0, a)
    assert h.state(0, a) is MESI.E
    state, sharers, owner = h.dir_state(a)
    assert state is DirState.EM and owner == 0


def test_second_load_demotes_to_shared(h):
    a = addr_homed(h.chip, 1)
    h.load(0, a)
    h.load(3, a)
    assert h.state(0, a) is MESI.S
    assert h.state(3, a) is MESI.S
    state, sharers, owner = h.dir_state(a)
    assert state is DirState.S and sharers == frozenset({0, 3})


def test_store_hits_in_exclusive_silently(h):
    a = addr_homed(h.chip, 1)
    h.load(0, a)
    msgs_before = h.chip.stats.total_messages()
    h.store(0, a, 5)
    assert h.state(0, a) is MESI.M
    assert h.chip.stats.total_messages() == msgs_before  # E->M is silent


def test_store_invalidates_all_sharers(h):
    a = addr_homed(h.chip, 1)
    for t in (0, 1, 3):
        h.load(t, a)
    h.store(2, a, 7)
    assert h.state(2, a) is MESI.M
    for t in (0, 1, 3):
        assert h.state(t, a) is MESI.I
    state, _, owner = h.dir_state(a)
    assert state is DirState.EM and owner == 2
    assert h.load(0, a) == 7


def test_store_upgrade_from_shared(h):
    a = addr_homed(h.chip, 1)
    h.load(0, a)
    h.load(1, a)       # both S now
    h.store(0, a, 3)   # upgrade: invalidate 1, grant M to 0
    assert h.state(0, a) is MESI.M
    assert h.state(1, a) is MESI.I


def test_load_from_modified_owner_gets_fresh_value(h):
    a = addr_homed(h.chip, 1)
    h.store(0, a, 123)
    assert h.state(0, a) is MESI.M
    assert h.load(2, a) == 123
    # Owner demoted to S via FwdGetS.
    assert h.state(0, a) is MESI.S
    state, sharers, _ = h.dir_state(a)
    assert state is DirState.S and sharers == frozenset({0, 2})


def test_store_steals_ownership(h):
    a = addr_homed(h.chip, 1)
    h.store(0, a, 1)
    h.store(1, a, 2)
    assert h.state(0, a) is MESI.I
    assert h.state(1, a) is MESI.M
    assert h.load(2, a) == 2


def test_atomic_serializes_increments(h):
    a = addr_homed(h.chip, 0)
    for t in range(4):
        old = h.atomic(t, a, lambda v: v + 1)
        assert old == t
    assert h.load(0, a) == 4


# ---------------------------------------------------------------------- #
# Message categories (Figure-7 accounting)
# ---------------------------------------------------------------------- #
def test_remote_miss_generates_request_and_reply(h):
    a = addr_homed(h.chip, 2)  # remote home for tile 0
    h.load(0, a)
    assert h.chip.stats.messages[MsgCat.REQUEST] == 1
    assert h.chip.stats.messages[MsgCat.REPLY] == 1
    assert h.chip.stats.messages[MsgCat.COHERENCE] == 0


def test_invalidation_storm_counts_coherence(h):
    a = addr_homed(h.chip, 1)
    for t in range(4):
        h.load(t, a)
    before = h.chip.stats.messages[MsgCat.COHERENCE]
    h.store(0, a, 1)
    # Inv + InvAck for each of the 3 other sharers; the sharer living on
    # the home tile itself exchanges both locally (not network traffic),
    # so 4 of the 6 messages cross the mesh.
    assert h.chip.stats.messages[MsgCat.COHERENCE] - before == 4


def test_local_home_access_is_free(h):
    a = addr_homed(h.chip, 0)  # home is tile 0 itself
    h.load(0, a)
    assert h.chip.stats.total_messages() == 0


# ---------------------------------------------------------------------- #
# Evictions and write-backs
# ---------------------------------------------------------------------- #
def test_dirty_eviction_writes_back():
    chip = make_chip(num_cores=2)
    h = MemHarness(chip)
    l1_sets = chip.config.l1.num_sets
    assoc = chip.config.l1.assoc
    # Fill one set beyond capacity with dirty lines.
    base_addrs = [(1 + k * chip.num_cores * l1_sets) * 64
                  for k in range(assoc + 1)]
    for i, a in enumerate(base_addrs):
        h.store(0, a, i)
    assert chip.stats.counters["l1.writebacks"] == 1
    # Victim (LRU = first stored) is gone but its value survives.
    assert h.state(0, base_addrs[0]) is MESI.I
    assert h.load(1, base_addrs[0]) == 0
    # Directory must not think tile 0 still owns the victim.
    state, _, owner = h.dir_state(base_addrs[0])
    assert owner != 0


def test_putack_clears_wb_buffer():
    chip = make_chip(num_cores=2)
    h = MemHarness(chip)
    l1_sets = chip.config.l1.num_sets
    assoc = chip.config.l1.assoc
    addrs = [(1 + k * chip.num_cores * l1_sets) * 64
             for k in range(assoc + 1)]
    for i, a in enumerate(addrs):
        h.store(0, a, i)
    assert not chip.tiles[0].l1._wb_buffer  # drained after PutAck


# ---------------------------------------------------------------------- #
# Watches (spin support)
# ---------------------------------------------------------------------- #
def test_watch_fires_on_invalidation(h):
    a = addr_homed(h.chip, 1)
    h.load(0, a)
    fired = []
    h.chip.tiles[0].l1.watch(a, lambda: fired.append(h.chip.engine.now))
    h.store(2, a, 9)
    assert fired, "watcher did not fire on invalidation"


def test_watch_fires_once(h):
    a = addr_homed(h.chip, 1)
    h.load(0, a)
    fired = []
    h.chip.tiles[0].l1.watch(a, lambda: fired.append(1))
    h.store(2, a, 1)
    h.load(0, a)
    h.store(2, a, 2)  # second invalidation: watcher already consumed
    assert len(fired) == 1


def test_mshr_merging_on_concurrent_loads():
    chip = make_chip(num_cores=4)
    a = 2 * 64
    results = []
    # Two loads from the same tile to the same line, back to back, before
    # the engine runs: the second must merge into the first's MSHR.
    chip.tiles[0].l1.load(a, results.append)
    chip.tiles[0].l1.load(a + 8, results.append)
    chip.engine.run()
    assert len(results) == 2
    assert chip.tiles[0].l1.mshr.merges == 1
    assert chip.stats.messages[MsgCat.REQUEST] == 1  # one GetS total
