"""Protocol edge-path tests: error branches, banking, capacity churn."""

import pytest

from helpers import MemHarness, make_chip
from repro.common.errors import ProtocolError
from repro.common.stats import StatsRegistry
from repro.mem.memory import MemoryController
from repro.noc.packet import Message
from repro.common.stats import MsgCat
from repro.sim.engine import Engine


def make_msg(kind, line, src=0, dst=0):
    return Message(src=src, dst=dst, kind=kind, category=MsgCat.COHERENCE,
                   size_bytes=8, payload={"line": line})


def test_home_rejects_unexpected_kind():
    chip = make_chip(2)
    with pytest.raises(ProtocolError):
        chip.tiles[0].home.receive(make_msg("DataS", 0))


def test_home_rejects_stray_invack():
    chip = make_chip(2)
    with pytest.raises(ProtocolError):
        chip.tiles[0].home.receive(make_msg("InvAck", 0))


def test_home_rejects_stray_wbdata():
    chip = make_chip(2)
    with pytest.raises(ProtocolError):
        chip.tiles[0].home.receive(make_msg("WbData", 0))


def test_l1_rejects_unexpected_kind():
    chip = make_chip(2)
    with pytest.raises(ProtocolError):
        chip.tiles[0].l1.receive(make_msg("GetS", 0))


def test_l1_rejects_putack_without_writeback():
    chip = make_chip(2)
    with pytest.raises(ProtocolError):
        chip.tiles[0].l1.receive(make_msg("PutAck", 0))


def test_stale_putm_counted():
    """Eviction-vs-forward crossing: the stale PutM path is exercised by
    forcing capacity churn on shared dirty lines."""
    chip = make_chip(2)
    h = MemHarness(chip)
    l1_sets = chip.config.l1.num_sets
    assoc = chip.config.l1.assoc
    set_stride = chip.num_cores * l1_sets * 64
    addrs = [(1 + k) * set_stride + 64 for k in range(assoc + 2)]
    # Tile 0 dirties lines until eviction, tile 1 steals them back.
    for round_ in range(3):
        for a in addrs:
            h.store(0, a, round_)
        for a in addrs:
            h.store(1, a, round_ + 100)
    # All values correct despite the churn.
    for a in addrs:
        assert h.load(0, a) == 2 + 100
    assert chip.stats.counters["dir.putm_fresh"] > 0


def test_banked_memory_serializes():
    engine = Engine()
    stats = StatsRegistry(1)
    mem = MemoryController(engine, stats, 0, latency=100, num_banks=1)
    done = []
    mem.access(0, lambda: done.append(engine.now))
    mem.access(64, lambda: done.append(engine.now))
    engine.run()
    assert done == [100, 200]  # one bank: strictly serialized


def test_banked_memory_parallel_across_banks():
    engine = Engine()
    stats = StatsRegistry(1)
    mem = MemoryController(engine, stats, 0, latency=100, num_banks=2)
    done = []
    mem.access(0, lambda: done.append(engine.now))     # bank 0
    mem.access(64, lambda: done.append(engine.now))    # bank 1
    engine.run()
    assert done == [100, 100]


def test_unbanked_memory_unlimited():
    engine = Engine()
    stats = StatsRegistry(1)
    mem = MemoryController(engine, stats, 0, latency=100, num_banks=0)
    done = []
    for k in range(5):
        mem.access(k * 64, lambda: done.append(engine.now))
    engine.run()
    assert done == [100] * 5
    assert mem.accesses == 5
