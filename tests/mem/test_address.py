"""Address mapping and allocator tests."""

import pytest

from repro.common.errors import ConfigError
from repro.mem.address import WORD_BYTES, AddressMap, Allocator


def test_line_and_word_arithmetic():
    amap = AddressMap(num_tiles=4, line_bytes=64)
    assert amap.line_of(0) == 0
    assert amap.line_of(63) == 0
    assert amap.line_of(64) == 64
    assert amap.line_of(130) == 128
    assert amap.word_of(13) == 8
    assert amap.line_index(128) == 2


def test_home_interleaving():
    amap = AddressMap(num_tiles=4)
    homes = [amap.home_of(i * 64) for i in range(8)]
    assert homes == [0, 1, 2, 3, 0, 1, 2, 3]
    # All addresses within a line share a home.
    assert amap.home_of(64) == amap.home_of(64 + 63)


def test_validation():
    with pytest.raises(ConfigError):
        AddressMap(num_tiles=0)
    with pytest.raises(ConfigError):
        AddressMap(num_tiles=2, line_bytes=30)


def test_allocator_line_alignment():
    amap = AddressMap(num_tiles=4)
    alloc = Allocator(amap)
    a = alloc.alloc(10)
    b = alloc.alloc(10)
    assert a % 64 == 0
    assert b % 64 == 0
    assert b > a


def test_allocator_unaligned_packing():
    amap = AddressMap(num_tiles=4)
    alloc = Allocator(amap)
    a = alloc.alloc(8, line_aligned=False)
    b = alloc.alloc(8, line_aligned=False)
    assert b == a + 8


def test_allocator_homed_allocation():
    amap = AddressMap(num_tiles=4)
    alloc = Allocator(amap)
    for target in (2, 0, 3, 3, 1):
        addr = alloc.alloc_line(home=target)
        assert amap.home_of(addr) == target


def test_allocator_homed_array_start():
    amap = AddressMap(num_tiles=8)
    alloc = Allocator(amap)
    addr = alloc.alloc_array(100, home=5)
    assert amap.home_of(addr) == 5
    assert addr % 64 == 0


def test_alloc_words():
    amap = AddressMap(num_tiles=2)
    alloc = Allocator(amap)
    addr = alloc.alloc_words(4)
    assert addr % 64 == 0
    assert WORD_BYTES == 8


def test_allocator_rejects_bad_requests():
    alloc = Allocator(AddressMap(num_tiles=2))
    with pytest.raises(ConfigError):
        alloc.alloc(0)
    with pytest.raises(ConfigError):
        alloc.alloc_line(home=7)
