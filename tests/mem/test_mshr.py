"""MSHR table tests."""

from repro.mem.mshr import MshrTable, Waiter


def test_allocate_and_complete():
    t = MshrTable()
    entry = t.allocate(0x100, "S", issue_time=5)
    entry.waiters.append(Waiter("S", lambda: None))
    assert t.get(0x100) is entry
    assert t.pending() == 1
    done = t.complete(0x100)
    assert done is entry
    assert t.get(0x100) is None
    assert t.pending() == 0


def test_merge_counts():
    t = MshrTable()
    t.allocate(0x100, "S", 0)
    t.merge(0x100, Waiter("M", lambda: None))
    t.merge(0x100, Waiter("S", lambda: None))
    assert len(t.get(0x100).waiters) == 2
    assert t.merges == 2
    assert t.allocations == 1


def test_outstanding_lines_sorted():
    t = MshrTable()
    t.allocate(0x200, "S", 0)
    t.allocate(0x100, "M", 0)
    assert t.outstanding_lines() == [0x100, 0x200]
