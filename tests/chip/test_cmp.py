"""Chip assembly and run-harness tests."""

import pytest

from helpers import make_chip, run_uniform
from repro import CMP, CMPConfig
from repro.common.errors import ConfigError, DeadlockError, SimulationError
from repro.cpu import isa
from repro.sync.api import BarrierImpl
from repro.sync.csw import CentralizedBarrier
from repro.sync.dsw import CombiningTreeBarrier
from repro.gline.barrier import GLBarrier


def test_default_chip_is_table1():
    chip = CMP()
    assert chip.num_cores == 32
    assert len(chip.tiles) == 32
    assert chip.config.memory_latency == 400


@pytest.mark.parametrize("kind,cls", [
    ("gl", GLBarrier), ("dsw", CombiningTreeBarrier),
    ("csw", CentralizedBarrier), ("csw-fa", CentralizedBarrier)])
def test_barrier_kind_selection(kind, cls):
    chip = make_chip(4, kind)
    assert isinstance(chip.barrier_impl, cls)


def test_custom_barrier_instance_accepted():
    cfg = CMPConfig.for_cores(4)
    chip0 = CMP(cfg)
    custom = CombiningTreeBarrier(chip0.allocator, [0, 1, 2, 3], arity=4)
    chip = CMP(CMPConfig.for_cores(4), barrier=custom)
    assert chip.barrier_impl is custom


def test_unknown_barrier_kind_rejected():
    with pytest.raises(ConfigError):
        CMP(CMPConfig.for_cores(4), barrier="nonsense")


def test_wrong_program_count_rejected():
    chip = make_chip(4)
    with pytest.raises(ConfigError):
        chip.run([iter([isa.Compute(1)])])  # 1 program for 4 cores


def test_empty_program_set_rejected():
    chip = make_chip(2)
    with pytest.raises(ConfigError):
        chip.run([None, None])


def test_idle_cores_allowed():
    chip = make_chip(4)
    progs = [iter([isa.Compute(10)]), None, None, None]
    res = chip.run(progs)
    assert res.total_cycles == 10


def test_deadlock_detection_mismatched_barriers():
    """One core skips the barrier: the others can never be released."""
    chip = make_chip(4, "gl")

    def prog(cid):
        if cid != 3:
            yield isa.BarrierOp()
        yield isa.Compute(1)

    with pytest.raises(DeadlockError) as exc:
        chip.run([prog(c) for c in range(4)])
    assert set(exc.value.blocked_cores) == {0, 1, 2}
    # The message pinpoints when it happened and what each blocked core
    # was executing (here: stuck inside the hardware barrier arrival).
    msg = str(exc.value)
    assert "deadlocked at cycle" in msg
    assert "HWBarrierArrive" in msg
    assert "core 3" not in msg          # the skipping core finished fine


def test_deadlock_detection_software_barrier():
    chip = make_chip(4, "dsw")

    def prog(cid):
        if cid != 0:
            yield isa.BarrierOp()

    with pytest.raises(DeadlockError) as exc:
        chip.run([prog(c) for c in range(4)])
    msg = str(exc.value)
    assert "deadlocked at cycle" in msg
    assert "core 1" in msg              # per-core pending-op detail


def test_budget_exceeded_reports_running_cores():
    chip = make_chip(2)
    with pytest.raises(SimulationError, match="budget"):
        chip.run([iter([isa.Compute(10_000)]),
                  iter([isa.Compute(10)])], max_cycles=100)


def test_run_result_fields():
    chip = make_chip(4, "dsw")
    res = run_uniform(chip, lambda c: iter([isa.Compute(c * 10),
                                            isa.BarrierOp()]))
    assert res.barrier_name == "DSW"
    assert res.num_cores == 4
    assert res.total_cycles > 30
    assert res.num_barriers() == 1
    assert res.total_messages() > 0
    assert 0 < sum(res.cycle_fractions().values()) <= 1.001
    assert "DSW" in res.summary()


def test_determinism_across_identical_runs():
    def one_run():
        chip = make_chip(8, "dsw")
        res = run_uniform(chip, lambda c: iter(
            [isa.Compute(c * 7), isa.BarrierOp(), isa.Store(0x4000, c),
             isa.BarrierOp()]))
        return (res.total_cycles, res.total_messages(),
                res.events_executed)

    assert one_run() == one_run()


def test_gl_beats_dsw_on_back_to_back_barriers():
    def run(kind):
        chip = make_chip(8, kind)
        return run_uniform(chip, lambda c: iter(
            [isa.BarrierOp() for _ in range(10)])).total_cycles

    assert run("gl") < run("dsw")
