"""Warm-up / stats-reset tests."""

from helpers import make_chip
from repro.cpu import isa
from repro.workloads import Kernel3Workload, SyntheticBarrierWorkload


def test_reset_stats_clears_measurements_keeps_state():
    chip = make_chip(4, "gl")
    data = chip.allocator.alloc_line()

    def prog(cid):
        yield isa.Store(data + 8 * cid, cid)
        yield isa.BarrierOp()

    chip.run([prog(c) for c in range(4)])
    assert chip.stats.num_barriers() == 1
    chip.reset_stats()
    assert chip.stats.num_barriers() == 0
    assert chip.stats.total_messages() == 0
    # Architectural state survives (the stores' final owner still caches
    # the line; all four cores wrote the same line so the last one owns it).
    assert chip.funcmem.load(data + 8) == 1
    assert any(t.l1.array.occupancy() > 0 for t in chip.tiles)


def test_run_with_warmup_measures_only_second_pass():
    chip = make_chip(4, "gl")
    result = chip.run_with_warmup(
        SyntheticBarrierWorkload(iterations=10),   # 40 barriers, discarded
        SyntheticBarrierWorkload(iterations=5))    # 20 barriers, measured
    assert result.num_barriers() == 20
    assert chip.stats.num_barriers() == 20


def test_run_with_warmup_keeps_sense_state_consistent():
    """Software barriers carry per-core sense state across the reset; the
    measured pass must still synchronize correctly."""
    chip = make_chip(4, "dsw")
    result = chip.run_with_warmup(
        SyntheticBarrierWorkload(iterations=3),
        SyntheticBarrierWorkload(iterations=4))
    assert result.num_barriers() == 16


def test_warm_caches_reduce_measured_misses():
    """Warming with a data workload leaves its lines resident; a measured
    pass touching the same amount of *new* data sees the same cold misses,
    but the warmed chip demonstrates reset-survivable cache state."""
    chip = make_chip(4, "gl")
    chip.run(Kernel3Workload(n=256, iterations=2))
    occupied = sum(t.l1.array.occupancy() for t in chip.tiles)
    chip.reset_stats()
    assert sum(t.l1.array.occupancy() for t in chip.tiles) == occupied
