"""RunResult bundle tests."""

from repro.chip.results import RunResult
from repro.common.stats import (BarrierSample, CycleCat, MsgCat,
                                StatsRegistry)


def make_result():
    stats = StatsRegistry(2)
    stats.add_cycles(0, CycleCat.BUSY, 600)
    stats.add_cycles(0, CycleCat.BARRIER, 400)
    stats.add_cycles(1, CycleCat.READ, 1000)
    stats.add_message(MsgCat.REQUEST, 1, 2)
    stats.add_message(MsgCat.REPLY, 1, 2)
    stats.add_barrier(BarrierSample(1, 0, 10, 14))
    stats.add_barrier(BarrierSample(2, 100, 120, 126))
    return RunResult(total_cycles=1000, barrier_name="GL", num_cores=2,
                     stats=stats, events_executed=50)


def test_cycle_breakdown_and_fractions():
    res = make_result()
    bd = res.cycle_breakdown()
    assert bd[CycleCat.BUSY] == 600
    fr = res.cycle_fractions()
    assert abs(sum(fr.values()) - 1.0) < 1e-9
    assert fr[CycleCat.READ] == 0.5


def test_message_accessors():
    res = make_result()
    assert res.total_messages() == 2
    assert res.messages()[MsgCat.REQUEST] == 1


def test_barrier_metrics():
    res = make_result()
    assert res.num_barriers() == 2
    assert res.avg_barrier_latency() == (4 + 6) / 2
    assert res.barrier_period() == 500
    assert res.barrier_cycles() == 400


def test_barrier_period_without_barriers():
    stats = StatsRegistry(1)
    res = RunResult(100, "GL", 1, stats, 1)
    assert res.barrier_period() == float("inf")


def test_summary_contains_key_facts():
    text = make_result().summary()
    assert "barrier=GL" in text
    assert "cores=2" in text
    assert "barriers: 2" in text
