"""Randomized stress tests: the full stack under chaotic op mixes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import make_chip
from repro.workloads.stress import StressWorkload

from tests_mem_props_shim import check_quiescent_consistency


@pytest.mark.parametrize("impl", ["gl", "dsw", "csw"])
@pytest.mark.parametrize("seed", [1, 7, 42, 1234])
def test_stress_mix_is_correct(impl, seed):
    chip = make_chip(4, impl)
    wl = StressWorkload(ops_per_core=100, barriers=3, seed=seed)
    chip.run(wl)
    wl.verify(chip)
    check_quiescent_consistency(chip)


@pytest.mark.parametrize("cores", [2, 6, 8])
def test_stress_across_core_counts(cores):
    chip = make_chip(cores, "gl")
    wl = StressWorkload(ops_per_core=80, barriers=2, seed=99)
    chip.run(wl)
    wl.verify(chip)
    check_quiescent_consistency(chip)


def test_stress_deterministic():
    def once():
        chip = make_chip(4, "dsw")
        res = chip.run(StressWorkload(ops_per_core=60, barriers=2,
                                      seed=5))
        return res.total_cycles, res.total_messages(), res.events_executed

    assert once() == once()


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 10_000), barriers=st.integers(0, 5))
def test_stress_property(seed, barriers):
    chip = make_chip(4, "gl")
    wl = StressWorkload(ops_per_core=60, barriers=barriers, seed=seed)
    chip.run(wl)
    wl.verify(chip)
    check_quiescent_consistency(chip)
    assert chip.stats.num_barriers() == barriers
