"""Example smoke tests and miscellaneous coverage."""

import subprocess
import sys
from pathlib import Path

import pytest

from helpers import make_chip
from repro.cpu import isa
from repro.workloads.base import vector_sweep

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


@pytest.mark.parametrize("script,args", [
    ("quickstart.py", ["4"]),
    ("custom_workload.py", []),
])
def test_example_runs(script, args):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True, text=True, timeout=300)
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()


def test_vector_sweep_fragment():
    chip = make_chip(2)
    a = chip.allocator.alloc_array(8)
    b = chip.allocator.alloc_array(8)
    chip.funcmem.store_array(a, list(range(8)))

    def prog():
        yield from vector_sweep([a], 0, 8, stores=[b], flops_per_elem=2)

    progs = [prog(), None]
    res = chip.run(progs)
    assert res.total_cycles > 0
    # vector_sweep stores the index value.
    assert chip.funcmem.load_array(b, 8) == list(range(8))


def test_timemux_single_slot_equals_flat():
    """One slot is the degenerate case: same 4-cycle latency as flat."""
    from repro.common.params import GLineConfig
    from repro.common.stats import StatsRegistry
    from repro.gline.timemux import build_time_multiplexed
    from repro.sim.engine import Engine

    engine = Engine()
    ctxs = build_time_multiplexed(engine, StatsRegistry(4), 2, 2,
                                  GLineConfig(), num_slots=1)
    for cid in range(4):
        ctxs[0].arrive(cid, lambda: None)
    engine.run()
    assert ctxs[0].samples[0].latency_after_last_arrival == 4


def test_hierarchical_substats_isolated():
    """Cluster-level barrier samples must not pollute chip-level stats."""
    from repro.common.params import GLineConfig
    from repro.common.stats import StatsRegistry
    from repro.gline.hierarchical import HierarchicalGLineBarrier
    from repro.sim.engine import Engine

    engine = Engine()
    stats = StatsRegistry(64)
    net = HierarchicalGLineBarrier(engine, stats, 8, 8, GLineConfig())
    for cid in range(64):
        net.arrive(cid, lambda: None)
    engine.run()
    assert net.barriers_completed == 1
    assert len(net.samples) == 1
    # The shared registry got exactly one 'gline.barriers' bump from the
    # top-level episode, none from the five sub-networks.
    assert stats.counters["gline.barriers"] == 1


def test_fig_charts_from_live_results():
    from repro.analysis.figures import fig6_chart, fig7_chart
    from repro.experiments import run_fig6, run_fig7
    from repro.workloads import Kernel3Workload

    wl = {"KERN3": Kernel3Workload(n=64, iterations=4)}
    f6 = run_fig6(num_cores=4, workloads=wl)
    f7 = run_fig7(num_cores=4, workloads=wl)
    c6 = fig6_chart(f6.comparisons)
    c7 = fig7_chart(f7.comparisons)
    assert "KERN3/DSW" in c6 and "KERN3/GL" in c6
    assert "barrier" in c6 and "coherence" in c7


def test_trailing_idle_core_attribution():
    """A core that finishes early contributes no phantom cycles."""
    chip = make_chip(2, "gl")
    progs = [iter([isa.Compute(10)]), iter([isa.Compute(500)])]
    res = chip.run(progs)
    assert res.total_cycles == 500
    from repro.common.stats import CycleCat
    assert chip.stats.core_cycle_breakdown(0)[CycleCat.BUSY] == 10
