"""Integration tests asserting the paper's headline claims hold in the
reproduction (at reduced scale; the shape, not the absolute numbers).
"""

import pytest

from helpers import make_chip, run_uniform
from repro.common.stats import CycleCat, MsgCat
from repro.cpu import isa
from repro.workloads import (EM3DWorkload, Kernel2Workload,
                             Kernel3Workload, OceanWorkload,
                             SyntheticBarrierWorkload,
                             UnstructuredWorkload)


def run_pair(wl_factory, cores=16):
    out = {}
    for impl in ("dsw", "gl"):
        chip = make_chip(cores, impl)
        out[impl] = chip.run(wl_factory())
    return out


# ---------------------------------------------------------------------- #
# §1/§3: the hardware barrier itself
# ---------------------------------------------------------------------- #
def test_claim_4_cycles_ideal_case():
    """'In the ideal case, our design takes only 4 cycles to perform a
    barrier synchronization once all cores or threads have arrived.'"""
    chip = make_chip(16, "gl", entry_overhead=0)
    run_uniform(chip, lambda c: iter([isa.BarrierOp()]))
    net = chip.barrier_impl.networks[0]
    assert net.samples[0].latency_after_last_arrival == 4


def test_claim_13_cycles_measured():
    """'13 cycles instead of the theoretical 4 ... overhead introduced ...
    through its application library.'"""
    chip = make_chip(16, "gl")
    res = run_uniform(chip, lambda c: iter(
        [isa.BarrierOp() for _ in range(8)]))
    assert res.total_cycles / res.num_barriers() == pytest.approx(13, abs=1)


def test_claim_no_barrier_traffic_on_data_network():
    """'We remove all barrier-related traffic and coherence activity from
    the interconnection network.'"""
    chip = make_chip(16, "gl")
    res = chip.run(SyntheticBarrierWorkload(iterations=25))
    assert res.total_messages() == 0


def test_claim_gline_budget():
    """'2 x (sqrt(NumCores) + 1)' G-lines -- 10 for the 16-core example."""
    chip = make_chip(16, "gl")
    assert chip.barrier_impl.networks[0].num_glines == 10


# ---------------------------------------------------------------------- #
# Figure 5
# ---------------------------------------------------------------------- #
def test_claim_fig5_ordering_and_scaling():
    """CSW >> DSW >> GL, growing with core count; GL flat."""
    per_barrier = {}
    for impl in ("csw", "dsw", "gl"):
        per_barrier[impl] = {}
        for cores in (4, 8, 16):
            chip = make_chip(cores, impl)
            res = chip.run(SyntheticBarrierWorkload(iterations=15))
            per_barrier[impl][cores] = res.total_cycles / res.num_barriers()
    for cores in (4, 8, 16):
        assert per_barrier["csw"][cores] > per_barrier["dsw"][cores] \
            > per_barrier["gl"][cores]
    assert per_barrier["csw"][16] > 2 * per_barrier["csw"][4]
    assert per_barrier["dsw"][16] > per_barrier["dsw"][4]
    assert per_barrier["gl"][16] == per_barrier["gl"][4]  # flat


# ---------------------------------------------------------------------- #
# Figures 6 and 7 (shape at 16 cores, small scale)
# ---------------------------------------------------------------------- #
def test_claim_kernels_large_time_reduction():
    res = run_pair(lambda: Kernel2Workload(iterations=8))
    ratio = res["gl"].total_cycles / res["dsw"].total_cycles
    assert ratio < 0.7  # paper: 0.30 at 32 cores full scale


def test_claim_kernel3_traffic_mostly_barrier():
    """'the vast reduction in network traffic for Kernel 3 ... almost all
    the traffic generated in this benchmark is due to the barrier.'"""
    res = run_pair(lambda: Kernel3Workload(iterations=40))
    ratio = res["gl"].total_messages() / res["dsw"].total_messages()
    assert ratio < 0.15


def test_claim_apps_small_improvement():
    """UNSTRUCTURED and OCEAN improve only a few percent (high barrier
    period / S2-dominated)."""
    for factory in (lambda: UnstructuredWorkload(nodes=256, phases=3),
                    lambda: OceanWorkload(grid=26, phases=3)):
        res = run_pair(factory)
        ratio = res["gl"].total_cycles / res["dsw"].total_cycles
        assert ratio > 0.85


def test_claim_em3d_large_improvement():
    """EM3D: low barrier period -> big win (54% time, 51% traffic)."""
    res = run_pair(lambda: EM3DWorkload(nodes=960, steps=3))
    time_ratio = res["gl"].total_cycles / res["dsw"].total_cycles
    traffic_ratio = (res["gl"].total_messages()
                     / res["dsw"].total_messages())
    assert time_ratio < 0.75
    assert traffic_ratio < 0.85


def test_claim_gl_removes_barrier_category():
    """Under GL the Barrier share of execution time collapses for
    fine-grain workloads."""
    res = run_pair(lambda: Kernel2Workload(iterations=8))
    def barrier_frac(r):
        bd = r.cycle_breakdown()
        return bd[CycleCat.BARRIER] / (sum(bd.values()) or 1)
    # GL's remaining barrier share is the genuine S2 imbalance wait (deep
    # pyramid levels leave most cores idle); the synchronization mechanism
    # itself collapses, halving the share relative to DSW.
    assert barrier_frac(res["dsw"]) > 0.5
    assert barrier_frac(res["gl"]) < 0.6 * barrier_frac(res["dsw"])


def test_claim_dsw_s2_is_local():
    """'In DSW, this [S2] stage involves negligible network traffic
    because, once shared variables are loaded in cache, busy-waiting is
    performed locally': with one deliberately slow core, waiting cores
    generate no messages while they spin."""
    chip = make_chip(4, "dsw")
    msgs = []

    def prog(cid):
        yield isa.Compute(100 if cid else 100_000)
        yield isa.BarrierOp()

    # Sample message count early in the long wait and at the end.
    chip.engine.schedule(30_000, lambda: msgs.append(
        chip.stats.total_messages()))
    chip.engine.schedule(90_000, lambda: msgs.append(
        chip.stats.total_messages()))
    chip.run([prog(c) for c in range(4)])
    assert msgs[1] == msgs[0]  # quiescent spin: zero traffic
