"""Golden regression tests against the checked-in results/ tables.

These re-derive a small, fast subset of the numbers pinned in
``results/fig5.txt``, ``results/fig6.txt`` and ``results/fig7.txt``
through the :mod:`repro.exec` executor and assert *exact* equality with
the committed text.  Any change to the simulator that shifts a headline
number must update the results files deliberately.

The subset is chosen for runtime: Figure 5 at 4 and 8 cores (the CSW
runs at 16/32 cores dominate the full figure's cost) and the KERN3 row
of Figures 6/7 (the paper's most dramatic data point: 0.16x time,
0.02x traffic).
"""

from pathlib import Path

import pytest

from repro.analysis.breakdown import Breakdown, BreakdownComparison
from repro.analysis.report import _fmt, pct
from repro.analysis.traffic import Traffic, TrafficComparison
from repro.common.stats import CycleCat
from repro.exec import ParallelRunner, ResultCache, use_executor
from repro.experiments.fig5 import run_fig5
from repro.experiments.runner import compare
from repro.workloads import Kernel3Workload

RESULTS = Path(__file__).resolve().parents[2] / "results"

#: The settings the checked-in tables were generated with
#: (``python -m repro all --scale 0.5`` and fig5's default iterations=40
#: at generation time -- see scripts/generate_experiments.py).
FIG5_ITERATIONS = 40
KERN3_ITERATIONS = 75          # Kernel3Workload at scale 0.5
NUM_CORES = 32


def _parse_rows(path: Path) -> dict[str, list[str]]:
    """First table of a results file -> {first cell: [remaining cells]}."""
    rows: dict[str, list[str]] = {}
    lines = path.read_text().splitlines()
    for line in lines[lines.index(next(l for l in lines
                                       if set(l) <= set("-+ "))) + 1:]:
        if not line.strip():
            break
        cells = [c.strip() for c in line.split("|")]
        rows[cells[0]] = cells[1:]
    return rows


@pytest.fixture(scope="module")
def executor(tmp_path_factory):
    cache = ResultCache(tmp_path_factory.mktemp("golden-cache"))
    return ParallelRunner(jobs=1, cache=cache)


@pytest.fixture(scope="module")
def kern3_pair(executor):
    """One DSW-vs-GL pair of KERN3 runs at the checked-in settings."""
    with use_executor(executor):
        return compare(Kernel3Workload(iterations=KERN3_ITERATIONS),
                       num_cores=NUM_CORES)


# ---------------------------------------------------------------------- #
# Figure 5: avg cycles per barrier (4 and 8 cores)
# ---------------------------------------------------------------------- #
def test_fig5_golden_rows(executor):
    golden = _parse_rows(RESULTS / "fig5.txt")
    with use_executor(executor):
        derived = run_fig5(core_counts=(4, 8),
                           iterations=FIG5_ITERATIONS)
    for row_idx, cores in enumerate((4, 8)):
        for col_idx, impl in enumerate(("csw", "dsw", "gl")):
            value = derived.cycles_per_barrier[impl][cores]
            assert _fmt(value) == golden[str(cores)][col_idx], (
                f"fig5 {impl.upper()}@{cores} drifted from "
                f"results/fig5.txt")
    assert derived.is_ordered()


# ---------------------------------------------------------------------- #
# Figure 6: KERN3 normalized execution time
# ---------------------------------------------------------------------- #
def test_fig6_golden_kern3_row(kern3_pair):
    golden = _parse_rows(RESULTS / "fig6.txt")["KERN3"]
    comp = BreakdownComparison(
        benchmark="KERN3",
        baseline=Breakdown.from_result("DSW", kern3_pair.baseline),
        treated=Breakdown.from_result("GL", kern3_pair.treated))
    base_total = comp.baseline.total
    assert _fmt(comp.normalized_treated_total) == golden[0] == "0.16"
    assert pct(comp.time_reduction) == golden[1] == "83.8%"
    assert pct(comp.baseline.cycles.get(CycleCat.BARRIER, 0)
               / base_total) == golden[3] == "85.2%"
    assert pct(comp.treated.cycles.get(CycleCat.BARRIER, 0)
               / base_total) == golden[4] == "1.4%"


# ---------------------------------------------------------------------- #
# Figure 7: KERN3 normalized network messages
# ---------------------------------------------------------------------- #
def test_fig7_golden_kern3_row(kern3_pair):
    golden = _parse_rows(RESULTS / "fig7.txt")["KERN3"]
    comp = TrafficComparison(
        benchmark="KERN3",
        baseline=Traffic.from_result("DSW", kern3_pair.baseline),
        treated=Traffic.from_result("GL", kern3_pair.treated))
    assert _fmt(comp.baseline.total) == golden[0] == "28,892"
    assert _fmt(comp.treated.total) == golden[1] == "558"
    assert _fmt(comp.normalized_treated_total) == golden[2] == "0.02"
    assert pct(comp.traffic_reduction) == golden[3] == "98.1%"


# ---------------------------------------------------------------------- #
# Warm path: the same numbers served entirely from cache
# ---------------------------------------------------------------------- #
def test_goldens_reproduce_from_cache(executor, kern3_pair):
    """Re-deriving the KERN3 pair must be all cache hits and identical --
    the executor's core guarantee, checked on real experiment data."""
    hits_before, misses_before = executor.hits, executor.misses
    with use_executor(executor):
        warm = compare(Kernel3Workload(iterations=KERN3_ITERATIONS),
                       num_cores=NUM_CORES)
    assert executor.hits == hits_before + 2
    assert executor.misses == misses_before
    assert warm.baseline.to_dict() == kern3_pair.baseline.to_dict()
    assert warm.treated.to_dict() == kern3_pair.treated.to_dict()
