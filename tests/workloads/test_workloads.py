"""Per-workload tests: construction, barrier counts, determinism."""

import pytest

from helpers import make_chip
from repro.common.errors import WorkloadError
from repro.workloads import (EM3DWorkload, Kernel2Workload,
                             Kernel3Workload, Kernel6Workload,
                             OceanWorkload, SyntheticBarrierWorkload,
                             UnstructuredWorkload, default_benchmarks)

SMALL = [
    SyntheticBarrierWorkload(iterations=5),
    Kernel2Workload(n=64, iterations=2),
    Kernel3Workload(n=64, iterations=5),
    Kernel6Workload(n=16, iterations=1),
    OceanWorkload(grid=10, phases=2),
    UnstructuredWorkload(nodes=64, phases=2),
    EM3DWorkload(nodes=64, steps=1, barriers_per_step=4),
]


@pytest.mark.parametrize("wl", SMALL, ids=lambda w: w.name)
def test_runs_and_barrier_count_matches_info(wl):
    chip = make_chip(4, "gl")
    res = chip.run(wl)
    assert res.num_barriers() == wl.info().num_barriers
    assert res.total_cycles > 0


@pytest.mark.parametrize("wl", SMALL, ids=lambda w: w.name)
def test_program_count_matches_cores(wl):
    chip = make_chip(4, "gl")
    progs = wl.build(chip)
    assert len(progs) == 4


@pytest.mark.parametrize("wl_factory", [
    lambda: Kernel3Workload(n=64, iterations=3),
    lambda: EM3DWorkload(nodes=64, steps=1, barriers_per_step=4),
    lambda: UnstructuredWorkload(nodes=64, phases=2),
], ids=["KERN3", "EM3D", "UNSTR"])
def test_deterministic_across_runs(wl_factory):
    def once():
        chip = make_chip(4, "dsw")
        res = chip.run(wl_factory())
        return res.total_cycles, res.total_messages()

    assert once() == once()


def test_workloads_run_under_software_barriers():
    chip = make_chip(4, "dsw")
    res = chip.run(Kernel3Workload(n=64, iterations=3))
    assert res.num_barriers() == 3
    assert res.total_messages() > 0


def test_kernel2_level_structure():
    wl = Kernel2Workload(n=64, iterations=1)
    assert wl.levels == [32, 16, 8, 4, 2, 1]
    assert wl.info().num_barriers == 6


def test_kernel6_barriers_per_iteration():
    wl = Kernel6Workload(n=16, iterations=2)
    assert wl.info().num_barriers == 2 * 14


def test_em3d_remote_fraction_affects_traffic():
    def traffic(remote):
        chip = make_chip(4, "gl")
        res = chip.run(EM3DWorkload(nodes=256, steps=2,
                                    barriers_per_step=4,
                                    remote_frac=remote))
        return res.total_messages()

    # More remote dependencies -> more cross-tile traffic.
    assert traffic(0.9) > traffic(0.0)


def test_unstructured_skew_creates_imbalance():
    """Skewed partitions stretch the barrier wait (S2) versus balanced."""
    def busy_spread(skew):
        chip = make_chip(4, "gl")
        chip.run(UnstructuredWorkload(nodes=256, phases=2, skew=skew))
        from repro.common.stats import CycleCat
        busy = [chip.stats.core_cycle_breakdown(c)[CycleCat.BUSY]
                for c in range(4)]
        return max(busy) - min(busy)

    assert busy_spread(0.6) > busy_spread(0.0)


def test_validation_errors():
    with pytest.raises(WorkloadError):
        SyntheticBarrierWorkload(iterations=0)
    with pytest.raises(WorkloadError):
        Kernel2Workload(n=100)  # not a power of two
    with pytest.raises(WorkloadError):
        OceanWorkload(grid=2)
    with pytest.raises(WorkloadError):
        EM3DWorkload(nodes=64, barriers_per_step=3)  # must be even
    with pytest.raises(WorkloadError):
        UnstructuredWorkload(nodes=4)


def test_default_benchmarks_scaling():
    full = default_benchmarks(1.0)
    tiny = default_benchmarks(0.01)
    assert len(full) == len(tiny) == 7
    assert tiny[0].iterations < full[0].iterations
    assert all(t.info().num_barriers >= 1 for t in tiny)


def test_info_paper_reference_values():
    assert Kernel2Workload().info().paper_period == 3_103
    assert OceanWorkload().info().paper_barriers == 364
    assert EM3DWorkload().info().paper_period == 3_673
