"""Workload partitioning helper tests."""

import pytest

from repro.common.errors import WorkloadError
from repro.workloads.base import chunk_bounds, skewed_bounds


def test_chunk_bounds_cover_range_exactly():
    for n in (0, 1, 7, 32, 100):
        for parts in (1, 2, 3, 8):
            covered = []
            for i in range(parts):
                lo, hi = chunk_bounds(n, parts, i)
                covered.extend(range(lo, hi))
            assert covered == list(range(n))


def test_chunk_bounds_balanced():
    sizes = [chunk_bounds(10, 3, i) for i in range(3)]
    lengths = [hi - lo for lo, hi in sizes]
    assert sorted(lengths) == [3, 3, 4]


def test_chunk_bounds_validation():
    with pytest.raises(WorkloadError):
        chunk_bounds(10, 0, 0)
    with pytest.raises(WorkloadError):
        chunk_bounds(10, 2, 2)


def test_skewed_bounds_cover_range_exactly():
    for n in (0, 5, 64, 333):
        for parts in (1, 2, 4, 8):
            covered = []
            for i in range(parts):
                lo, hi = skewed_bounds(n, parts, i, skew=0.4)
                covered.extend(range(lo, hi))
            assert covered == list(range(n))


def test_skewed_bounds_actually_skew():
    first = skewed_bounds(1000, 4, 0, skew=0.5)
    last = skewed_bounds(1000, 4, 3, skew=0.5)
    assert (first[1] - first[0]) > (last[1] - last[0])


def test_zero_skew_is_balanced():
    sizes = [skewed_bounds(100, 4, i, skew=0.0) for i in range(4)]
    lengths = {hi - lo for lo, hi in sizes}
    assert lengths == {25}


def test_skew_validation():
    with pytest.raises(WorkloadError):
        skewed_bounds(10, 2, 0, skew=1.0)
    with pytest.raises(WorkloadError):
        skewed_bounds(10, 2, 0, skew=-0.1)
