"""End-to-end functional verification of the benchmark dataflows.

Each workload seeds real data, runs through the *full* simulated stack
(cores -> L1s -> directory -> NoC -> barriers/locks) and is then checked
against a plain-Python/NumPy reference.  Any coherence-ordering or
synchronization bug that lets a stale value through fails these tests.
"""

import pytest

from helpers import make_chip
from repro.workloads import (EM3DWorkload, Kernel2Workload,
                             Kernel3Workload, Kernel6Workload,
                             OceanWorkload, UnstructuredWorkload)

FACTORIES = [
    ("KERN2", lambda: Kernel2Workload(n=64, iterations=2)),
    ("KERN3", lambda: Kernel3Workload(n=64, iterations=4)),
    ("KERN6", lambda: Kernel6Workload(n=32, iterations=2)),
    ("OCEAN", lambda: OceanWorkload(grid=12, phases=3)),
    ("UNSTR", lambda: UnstructuredWorkload(nodes=64, phases=3)),
    ("EM3D", lambda: EM3DWorkload(nodes=128, steps=2,
                                  barriers_per_step=4)),
]


@pytest.mark.parametrize("impl", ["gl", "dsw", "csw"])
@pytest.mark.parametrize("name,factory", FACTORIES,
                         ids=[n for n, _ in FACTORIES])
def test_dataflow_matches_reference(impl, name, factory):
    wl = factory()
    chip = make_chip(4, impl)
    chip.run(wl)
    wl.verify(chip)


@pytest.mark.parametrize("name,factory", FACTORIES,
                         ids=[n for n, _ in FACTORIES])
def test_dataflow_correct_at_other_core_counts(name, factory):
    for cores in (2, 8):
        wl = factory()
        chip = make_chip(cores, "gl")
        chip.run(wl)
        wl.verify(chip)


def test_kernel2_reference_shape():
    wl = Kernel2Workload(n=16, iterations=1)
    chip = make_chip(2, "gl")
    chip.run(wl)
    ref = wl.reference_pyramid()
    assert len(ref) == 16 + sum(wl.levels)


def test_kernel6_iterations_are_idempotent():
    """w[0..1] never change, so re-running the recurrence reproduces the
    same w[] -- both in the reference and through the simulated chip."""
    a = Kernel6Workload(n=16, iterations=1)
    b = Kernel6Workload(n=16, iterations=2)
    for wl in (a, b):
        chip = make_chip(2, "gl")
        chip.run(wl)
        wl.verify(chip)
    assert a.reference_w() == b.reference_w()
