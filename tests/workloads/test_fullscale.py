"""Full-scale configuration tests (structure only -- not executed)."""

from repro.workloads.fullscale import (fullscale_benchmarks,
                                       fullscale_em3d, fullscale_kernel2,
                                       fullscale_kernel6, fullscale_ocean,
                                       fullscale_synthetic)


def test_fullscale_barrier_counts_match_table2():
    assert fullscale_synthetic().info().num_barriers == 400_000
    assert fullscale_kernel2().info().num_barriers == 10_000
    assert fullscale_kernel6().info().num_barriers == 1_022_000
    assert fullscale_ocean().info().num_barriers == 364
    em3d = fullscale_em3d().info()
    assert em3d.num_barriers == 200  # paper reports 198 (~8 per step)


def test_fullscale_input_sizes_match_paper():
    assert "1024 elements, 1000 iterations" in \
        fullscale_kernel2().info().input_size
    assert "258x258" in fullscale_ocean().info().input_size
    assert "38400 nodes, degree 2, 15% remote" in \
        fullscale_em3d().info().input_size


def test_fullscale_set_is_complete():
    names = [wl.info().name for wl in fullscale_benchmarks()]
    assert names == ["Synthetic", "KERN2", "KERN3", "KERN6", "OCEAN",
                     "UNSTR", "EM3D"]
