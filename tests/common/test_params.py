"""Configuration validation tests (Table 1)."""

import pytest

from repro.common.errors import ConfigError
from repro.common.params import (CacheConfig, CMPConfig, CoreConfig,
                                 GLineConfig, NocConfig, mesh_dims)


# ---------------------------------------------------------------------- #
# mesh_dims
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("n,expected", [
    (1, (1, 1)), (2, (1, 2)), (4, (2, 2)), (8, (2, 4)), (16, (4, 4)),
    (32, (4, 8)), (6, (2, 3)), (12, (3, 4)), (49, (7, 7)), (7, (1, 7)),
])
def test_mesh_dims(n, expected):
    assert mesh_dims(n) == expected


def test_mesh_dims_rejects_nonpositive():
    with pytest.raises(ConfigError):
        mesh_dims(0)


# ---------------------------------------------------------------------- #
# CacheConfig
# ---------------------------------------------------------------------- #
def test_l1_defaults_match_table1():
    cfg = CMPConfig()
    assert cfg.l1.size_bytes == 32 * 1024
    assert cfg.l1.assoc == 4
    assert cfg.l1.latency == 1
    assert cfg.l1.num_sets == 128
    assert cfg.l2.size_bytes == 256 * 1024
    assert cfg.l2.total_latency == 8  # the paper's "6+2 cycles"
    assert cfg.memory_latency == 400
    assert cfg.num_cores == 32
    assert (cfg.noc.rows, cfg.noc.cols) == (4, 8)


def test_cache_geometry_validation():
    with pytest.raises(ConfigError):
        CacheConfig(size_bytes=0, assoc=4)
    with pytest.raises(ConfigError):
        CacheConfig(size_bytes=1024, assoc=4, line_bytes=48)
    with pytest.raises(ConfigError):
        CacheConfig(size_bytes=1000, assoc=3, line_bytes=64)


# ---------------------------------------------------------------------- #
# NocConfig
# ---------------------------------------------------------------------- #
def test_noc_flits():
    noc = NocConfig(rows=2, cols=2)
    assert noc.flits(8) == 1
    assert noc.flits(72) == 1    # 75-byte links carry a line in one flit
    assert noc.flits(76) == 2
    assert noc.flits(1) == 1


def test_noc_validation():
    with pytest.raises(ConfigError):
        NocConfig(rows=0, cols=4)
    with pytest.raises(ConfigError):
        NocConfig(rows=2, cols=2, link_latency=0)


# ---------------------------------------------------------------------- #
# GLineConfig
# ---------------------------------------------------------------------- #
def test_gline_wire_budget_matches_paper():
    # The paper: 2*(sqrt(N)+1) G-lines per barrier; 10 for a 16-core CMP.
    g = GLineConfig()
    assert g.lines_required(4, 4) == 10
    assert g.lines_required(2, 2) == 6
    assert g.lines_required(7, 7) == 16


def test_gline_wires_degenerate_meshes():
    g = GLineConfig()
    assert g.lines_required(1, 4) == 2   # one row: no vertical pair
    assert g.lines_required(4, 1) == 2   # one column: only the vertical pair
    assert g.lines_required(1, 1) == 0


def test_gline_wires_scale_with_contexts():
    g = GLineConfig(num_barriers=3)
    assert g.lines_required(4, 4) == 30


def test_gline_validation():
    with pytest.raises(ConfigError):
        GLineConfig(line_latency=0)
    with pytest.raises(ConfigError):
        GLineConfig(num_barriers=0)


# ---------------------------------------------------------------------- #
# CMPConfig
# ---------------------------------------------------------------------- #
def test_for_cores_builds_matching_mesh():
    cfg = CMPConfig.for_cores(16)
    assert cfg.num_cores == 16
    assert cfg.noc.num_tiles == 16


def test_mismatched_mesh_rejected():
    with pytest.raises(ConfigError):
        CMPConfig(num_cores=8, noc=NocConfig(rows=2, cols=2))


def test_line_size_consistency_enforced():
    with pytest.raises(ConfigError):
        CMPConfig(num_cores=32, line_bytes=128)


def test_with_override():
    cfg = CMPConfig().with_(memory_latency=100)
    assert cfg.memory_latency == 100
    assert cfg.num_cores == 32


def test_table1_rendering():
    rows = dict(CMPConfig().table1())
    assert rows["Number of cores"] == "32"
    assert rows["Cache line size"] == "64 Bytes"
    assert rows["Memory access time"] == "400 cycles"
    assert rows["L2 Cache (per core)"] == "256KB, 4-way, 6+2 cycles"


def test_core_config_validation():
    with pytest.raises(ConfigError):
        CoreConfig(freq_ghz=0)
    with pytest.raises(ConfigError):
        CoreConfig(issue_width=0)
