"""StatsRegistry tests."""

from repro.common.stats import (BarrierSample, CycleCat, MsgCat,
                                StatsRegistry)


def test_counters_accumulate():
    s = StatsRegistry(2)
    s.bump("x")
    s.bump("x", 4)
    assert s.counters["x"] == 5
    assert s.counters["unset"] == 0


def test_cycle_attribution_per_core_and_total():
    s = StatsRegistry(3)
    s.add_cycles(0, CycleCat.BUSY, 10)
    s.add_cycles(1, CycleCat.BARRIER, 7)
    s.add_cycles(0, CycleCat.BUSY, 5)
    assert s.core_cycle_breakdown(0)[CycleCat.BUSY] == 15
    assert s.core_cycle_breakdown(1)[CycleCat.BARRIER] == 7
    total = s.cycle_breakdown()
    assert total[CycleCat.BUSY] == 15
    assert total[CycleCat.BARRIER] == 7
    assert total[CycleCat.LOCK] == 0


def test_zero_cycles_not_recorded():
    s = StatsRegistry(1)
    s.add_cycles(0, CycleCat.READ, 0)
    assert CycleCat.READ not in s.cycles[0]


def test_message_accounting():
    s = StatsRegistry(1)
    s.add_message(MsgCat.REQUEST, flits=1, hops=3)
    s.add_message(MsgCat.REPLY, flits=2, hops=3)
    s.add_message(MsgCat.REQUEST, flits=1, hops=1)
    assert s.messages[MsgCat.REQUEST] == 2
    assert s.total_messages() == 3
    assert s.flits[MsgCat.REPLY] == 2
    assert s.hop_flits[MsgCat.REPLY] == 6
    assert s.hop_flits[MsgCat.REQUEST] == 4


def test_barrier_samples_and_latency():
    s = StatsRegistry(2)
    s.add_barrier(BarrierSample(1, first_arrival=10, last_arrival=20,
                                release=24))
    s.add_barrier(BarrierSample(2, first_arrival=30, last_arrival=30,
                                release=36))
    assert s.num_barriers() == 2
    assert s.avg_barrier_latency() == (4 + 6) / 2
    assert s.avg_barrier_span() == (14 + 6) / 2
    assert s.barriers[0].span == 14


def test_empty_barrier_stats():
    s = StatsRegistry(1)
    assert s.avg_barrier_latency() == 0.0
    assert s.avg_barrier_span() == 0.0


def test_snapshot_is_plain_data():
    s = StatsRegistry(1)
    s.bump("a")
    s.add_cycles(0, CycleCat.BUSY, 3)
    s.add_message(MsgCat.COHERENCE, 1, 2)
    snap = s.snapshot()
    assert snap["counters"] == {"a": 1}
    assert snap["cycle_breakdown"]["busy"] == 3
    assert snap["messages"]["coherence"] == 1
    assert snap["total_messages"] == 1
