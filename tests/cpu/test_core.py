"""Core execution-model tests."""

import pytest

from helpers import make_chip, run_uniform
from repro.common.errors import SimulationError
from repro.common.stats import CycleCat
from repro.cpu import isa


def run_single(chip, program):
    """Run *program* on core 0 of *chip*; other cores idle."""
    progs = [None] * chip.num_cores
    progs[0] = program
    return chip.run(progs)


def test_compute_advances_time():
    chip = make_chip(2)

    def prog():
        yield isa.Compute(100)
        yield isa.Compute(23)

    res = run_single(chip, prog())
    assert res.total_cycles == 123
    assert chip.stats.core_cycle_breakdown(0)[CycleCat.BUSY] == 123


def test_load_value_delivered_to_program():
    chip = make_chip(2)
    chip.funcmem.store(0x40, 17)
    seen = []

    def prog():
        value = yield isa.Load(0x40)
        seen.append(value)

    run_single(chip, prog())
    assert seen == [17]


def test_store_then_load_round_trip():
    chip = make_chip(2)
    seen = []

    def prog():
        yield isa.Store(0x40, 5)
        seen.append((yield isa.Load(0x40)))

    run_single(chip, prog())
    assert seen == [5]


def test_atomic_returns_old_value():
    chip = make_chip(2)
    chip.funcmem.store(0x40, 9)
    seen = []

    def prog():
        seen.append((yield isa.FetchAdd(0x40, 1)))
        seen.append((yield isa.Load(0x40)))

    run_single(chip, prog())
    assert seen == [9, 10]


def test_read_write_attribution():
    chip = make_chip(2)

    def prog():
        yield isa.Load(0x40)
        yield isa.Store(0x80, 1)

    run_single(chip, prog())
    bd = chip.stats.core_cycle_breakdown(0)
    assert bd[CycleCat.READ] > 0
    assert bd[CycleCat.WRITE] > 0
    assert bd[CycleCat.BARRIER] == 0


def test_barrier_ops_attributed_to_barrier_phase():
    chip = make_chip(2, barrier="dsw")
    res = run_uniform(chip, lambda c: iter([isa.BarrierOp()]))
    bd = chip.stats.cycle_breakdown()
    # Everything the software barrier did (atomics, spins, stores) must be
    # attributed to BARRIER, not READ/WRITE.
    assert bd[CycleCat.BARRIER] > 0
    assert bd[CycleCat.READ] == 0
    assert bd[CycleCat.WRITE] == 0


def test_lock_attribution_outside_barrier():
    chip = make_chip(2)
    lock = chip.allocator.alloc_line()

    def prog(cid):
        yield isa.AcquireLock(lock)
        yield isa.Compute(10)
        yield isa.ReleaseLock(lock)

    run_uniform(chip, prog)
    bd = chip.stats.cycle_breakdown()
    assert bd[CycleCat.LOCK] > 0
    assert bd[CycleCat.BUSY] == 20  # the critical sections


def test_spin_until_wakes_on_remote_store():
    chip = make_chip(2)
    flag = chip.allocator.alloc_line()
    events = []

    def waiter():
        value = yield isa.SpinUntil(flag, lambda v: v == 7)
        events.append(("woke", value, chip.engine.now))

    def setter():
        yield isa.Compute(500)
        yield isa.Store(flag, 7)

    chip.run([waiter(), setter()])
    assert events and events[0][1] == 7
    assert events[0][2] >= 500


def test_spin_satisfied_immediately_if_value_present():
    chip = make_chip(2)
    flag = chip.allocator.alloc_line()
    chip.funcmem.store(flag, 1)

    def prog():
        yield isa.SpinUntil(flag, lambda v: v == 1)

    res = run_single(chip, prog())
    # One cold miss (L2 + memory fetch), but no waiting beyond it.
    assert res.total_cycles < 600
    assert res.events_executed < 40


def test_spinner_generates_no_events_while_waiting():
    """Event-driven spin: a long quiescent wait costs O(1) events."""
    chip = make_chip(2)
    flag = chip.allocator.alloc_line()

    def waiter():
        yield isa.SpinUntil(flag, lambda v: v == 1)

    def setter():
        yield isa.Compute(100_000)
        yield isa.Store(flag, 1)

    res = chip.run([waiter(), setter()])
    assert res.total_cycles >= 100_000
    assert res.events_executed < 200


def test_unknown_op_rejected():
    chip = make_chip(2)

    def prog():
        yield "not an op"

    with pytest.raises(SimulationError, match="unknown op"):
        run_single(chip, prog())


def test_negative_compute_rejected():
    chip = make_chip(2)
    with pytest.raises(SimulationError):
        run_single(chip, iter([isa.Compute(-5)]))


def test_core_finish_records_time():
    chip = make_chip(2)
    run_single(chip, iter([isa.Compute(42)]))
    core = chip.cores[0]
    assert core.finished
    assert core.finish_time == 42
    assert core.ops_executed == 1


def test_cannot_start_running_core():
    chip = make_chip(2)
    core = chip.cores[0]
    core.start(iter([isa.Compute(1_000)]))
    with pytest.raises(SimulationError):
        core.start(iter([isa.Compute(1)]))


def test_generator_return_value_propagates_through_frames():
    chip = make_chip(2, barrier="dsw")
    collected = []

    def prog():
        # Nested plain yield-from returns its value to the caller.
        def inner():
            yield isa.Compute(1)
            return 42
        value = yield from inner()
        collected.append(value)

    run_single(chip, prog())
    assert collected == [42]
