"""Operation ISA tests."""

from repro.cpu import isa


def test_fetch_add_semantics():
    op = isa.FetchAdd(0x100, 5)
    assert isinstance(op, isa.AtomicRMW)
    assert op.addr == 0x100
    assert op.fn(10) == 15


def test_swap_semantics():
    op = isa.Swap(0x100, 77)
    assert op.fn(3) == 77
    assert op.fn(0) == 77


def test_test_and_set_semantics():
    op = isa.TestAndSet(0x100)
    assert op.fn(0) == 1
    assert op.fn(1) == 1


def test_ops_are_frozen():
    import dataclasses
    import pytest
    op = isa.Compute(10)
    with pytest.raises(dataclasses.FrozenInstanceError):
        op.cycles = 20


def test_barrier_defaults_to_context_zero():
    assert isa.BarrierOp().barrier_id == 0
    assert isa.BarrierOp(2).barrier_id == 2


def test_spin_until_holds_predicate():
    op = isa.SpinUntil(0x40, lambda v: v > 3)
    assert not op.pred(3)
    assert op.pred(4)


def test_operation_tuple_covers_public_ops():
    assert isa.Compute in isa.Operation
    assert isa.SpinUntil in isa.Operation
    assert isa.AcquireLock in isa.Operation
