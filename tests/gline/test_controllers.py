"""Unit tests for the four Figure-4 controller FSMs in isolation."""

from repro.gline.controllers import (BarRegFile, MasterH, MasterV, SlaveH,
                                     SlaveV)
from repro.gline.gline import GLine


def make_row(cols=3):
    tx = GLine("tx", 6)
    rel = GLine("rel", 6)
    regs = BarRegFile(cols)
    master = MasterH(core_id=0, row=0, rx=tx, tx=rel,
                     num_slaves=cols - 1)
    slaves = [SlaveH(core_id=c, tx=tx, rx=rel) for c in range(1, cols)]
    return tx, rel, regs, master, slaves


def test_barregfile_write_and_clear():
    regs = BarRegFile(2)
    hits = []
    regs.write(0, lambda: hits.append(0))
    assert regs.is_set(0) and not regs.is_set(1)
    resume = regs.clear(0)
    assert not regs.is_set(0)
    resume()
    assert hits == [0]


def test_slave_h_pulses_once_on_arrival():
    tx, rel, regs, master, slaves = make_row()
    slave = slaves[0]
    regs.write(slave.core_id, lambda: None)
    slave.assert_phase(regs)
    assert tx.sample_count() == 1
    assert not slave.signaling  # Waiting state
    tx.end_cycle()
    slave.assert_phase(regs)    # must not re-pulse
    assert tx.sample_count() == 0


def test_slave_h_does_nothing_before_arrival():
    tx, rel, regs, master, slaves = make_row()
    slaves[0].assert_phase(regs)
    assert tx.sample_count() == 0
    assert slaves[0].idle


def test_master_h_accumulates_scnt_across_cycles():
    tx, rel, regs, master, slaves = make_row(cols=3)
    # Slave 1 arrives in cycle 0, slave 2 in cycle 1.
    regs.write(1, lambda: None)
    slaves[0].assert_phase(regs)
    master.sample_phase(regs)
    tx.end_cycle()
    assert master.scnt == 1 and not master.flag
    regs.write(2, lambda: None)
    slaves[1].assert_phase(regs)
    master.sample_phase(regs)
    tx.end_cycle()
    assert master.scnt == 2
    assert not master.flag      # own core hasn't arrived
    regs.write(0, lambda: None)
    master.sample_phase(regs)
    assert master.mcnt == 1 and master.flag


def test_master_h_scsma_counts_simultaneous():
    tx, rel, regs, master, slaves = make_row(cols=3)
    for slave in slaves:
        regs.write(slave.core_id, lambda: None)
        slave.assert_phase(regs)
    regs.write(0, lambda: None)
    master.sample_phase(regs)
    assert master.scnt == 2     # both counted in one cycle
    assert master.flag


def test_master_h_release_resets_everything():
    tx, rel, regs, master, slaves = make_row(cols=2)
    regs.write(0, lambda: None)
    regs.write(1, lambda: None)
    slaves[0].assert_phase(regs)
    master.sample_phase(regs)
    assert master.flag
    master.release_trigger = True
    released = []
    master.assert_phase(regs, released)
    assert rel.sampled_on()
    assert master.idle
    assert not regs.is_set(0)
    assert len(released) == 1
    # The waiting slave sees the release line and clears its core.
    slaves[0].sample_phase(regs, released)
    assert slaves[0].signaling
    assert not regs.is_set(1)
    assert len(released) == 2


def test_slave_v_waits_for_row_flag():
    tx_v = GLine("txv", 6)
    rel_v = GLine("relv", 6)
    row_tx = GLine("tx", 6)
    regs = BarRegFile(4)
    mh = MasterH(core_id=2, row=1, rx=row_tx, tx=None, num_slaves=0)
    sv = SlaveV(core_id=2, row=1, tx=tx_v, rx=rel_v, master_h=mh)
    sv.assert_phase()
    assert tx_v.sample_count() == 0
    mh.flag = True
    sv.assert_phase()
    assert tx_v.sample_count() == 1
    assert sv.sent
    # Release: observing the vertical release arms the row master.
    rel_v.attach("MvT0")
    rel_v.assert_signal("MvT0")
    sv.sample_phase()
    assert mh.release_trigger
    sv.reset()
    assert sv.idle


def test_master_v_requires_both_count_and_row0_flag():
    tx_v = GLine("txv", 6)
    rel_v = GLine("relv", 6)
    row_tx = GLine("tx", 6)
    regs = BarRegFile(4)
    mh0 = MasterH(core_id=0, row=0, rx=row_tx, tx=None, num_slaves=0)
    mv = MasterV(core_id=0, rx=tx_v, tx=rel_v, master_h0=mh0,
                 num_slaves=1)
    tx_v.attach("SvT2")
    tx_v.assert_signal("SvT2")
    mv.sample_phase()
    assert mv.scnt == 1 and not mv.done   # row 0 not complete yet
    tx_v.end_cycle()
    mh0.flag = True
    mv.sample_phase()
    assert mv.done
    # Release assert drives the vertical release and arms row 0.
    mv.assert_phase()
    assert rel_v.sampled_on()
    assert mh0.release_trigger
    assert mv.scnt == 0 and mv.mcnt == 0 and not mv.done


def test_will_act_predicates():
    tx, rel, regs, master, slaves = make_row(cols=2)
    assert not master.will_act(regs)
    assert not slaves[0].will_act(regs)
    regs.write(1, lambda: None)
    assert slaves[0].will_act(regs)     # will pulse next cycle
    regs.write(0, lambda: None)
    assert master.will_act(regs)        # mcnt sampling pending
    master.mcnt = 1
    assert not master.will_act(regs)    # steady, waiting on slaves
    master.release_trigger = True
    assert master.will_act(regs)
