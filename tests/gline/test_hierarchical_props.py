"""Property tests for the hierarchical G-line barrier."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.params import GLineConfig
from repro.common.stats import StatsRegistry
from repro.gline.hierarchical import HierarchicalGLineBarrier
from repro.sim.engine import Engine


@settings(max_examples=15, deadline=None)
@given(data=st.data())
def test_hierarchical_invariants(data):
    rows = data.draw(st.sampled_from([8, 9, 10]))
    cols = data.draw(st.sampled_from([8, 10, 14]))
    n = rows * cols
    times = data.draw(st.lists(st.integers(0, 400), min_size=n,
                               max_size=n))
    engine = Engine()
    net = HierarchicalGLineBarrier(engine, StatsRegistry(n), rows, cols,
                                   GLineConfig())
    releases: dict[int, int] = {}
    for cid, t in enumerate(times):
        engine.schedule_at(t, lambda c=cid: net.arrive(
            c, lambda c=c: releases.__setitem__(c, engine.now)))
    engine.run()

    # Everyone released exactly once, nobody before the last arrival.
    assert sorted(releases) == list(range(n))
    assert min(releases.values()) > max(times)
    # Releases synchronized chip-wide.
    assert len(set(releases.values())) == 1
    assert net.barriers_completed == 1
    # Bounded, small latency (two G-line levels + gating hand-offs).
    assert net.samples[0].latency_after_last_arrival <= 24
    assert engine.pending() == 0


@settings(max_examples=8, deadline=None)
@given(episodes=st.integers(2, 4), seed=st.integers(0, 100))
def test_hierarchical_repeated_episodes_random_gaps(episodes, seed):
    import random
    rng = random.Random(seed)
    engine = Engine()
    net = HierarchicalGLineBarrier(engine, StatsRegistry(64), 8, 8,
                                   GLineConfig())
    n = 64
    remaining = {"count": n, "round": 0}

    def released():
        remaining["count"] -= 1
        if remaining["count"] == 0 and remaining["round"] < episodes - 1:
            remaining["round"] += 1
            remaining["count"] = n
            for cid in range(n):
                engine.schedule(rng.randrange(1, 50), net.arrive, cid,
                                released)

    for cid in range(n):
        engine.schedule(rng.randrange(0, 50), net.arrive, cid, released)
    engine.run()
    assert net.barriers_completed == episodes
