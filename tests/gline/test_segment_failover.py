"""Per-segment degrade: hierarchical clusters and time-mux slots.

A fault is a *local* event: with ``segment_failover`` a quarantined
cluster only degrades its own segment -- its cores gather in a software
cohort that still joins the chip-wide barrier through the healthy top
level -- and a time-multiplexed slot context degrades alone while its
sibling slots keep the shared wires.  With recovery enabled a healed
segment is probed and re-admitted without the rest of the chip ever
leaving hardware.
"""

from repro.common.params import GLineConfig
from repro.common.stats import StatsRegistry
from repro.faults import FAILOVER
from repro.gline.hierarchical import HierarchicalGLineBarrier
from repro.gline.recovery import DEGRADED, PROBATION, QUARANTINED
from repro.gline.timemux import build_time_multiplexed
from repro.sim.engine import Engine

HARDENED = dict(watchdog_budget=48, watchdog_retries=1)
RECOVERY = dict(**HARDENED, recovery_enabled=True,
                recovery_probe_interval=8, recovery_backoff_factor=2,
                recovery_max_backoff=64, recovery_probation_barriers=1,
                recovery_max_flaps=2, recovery_max_probes=3)


def _arrive_all(engine, net, n, drain=True):
    outcomes = {}
    for cid in range(n):
        engine.schedule_at(engine.now, lambda c=cid: net.arrive(
            c, lambda *a, c=c: outcomes.__setitem__(c, a)))
    if drain:
        engine.run()
    else:
        while len(outcomes) < n:
            assert engine.step(), "engine drained before all outcomes"
    return outcomes


# ---------------------------------------------------------------------- #
# Hierarchical clusters
# ---------------------------------------------------------------------- #
def _hier(**cfg):
    engine = Engine()
    stats = StatsRegistry(64)
    net = HierarchicalGLineBarrier(engine, stats, 8, 8,
                                   GLineConfig(**cfg))
    return engine, stats, net


def test_cluster_fault_degrades_only_its_segment():
    engine, stats, net = _hier(**HARDENED, segment_failover=True)
    net.clusters[0].lines[0].stuck = 0
    outcomes = _arrive_all(engine, net, 64)
    # Everyone completed, and the chip is NOT quarantined: only the
    # faulty cluster's 16 cores took the software segment path.
    assert sorted(outcomes) == list(range(64))
    assert net.clusters[0].quarantined and not net.quarantined
    assert net.barriers_completed == 1
    assert stats.counters["faults.failover.segment_arrivals"] == 16
    # The next episode repeats the split: healthy clusters stay on
    # hardware, the quarantined segment re-collects in software.
    outcomes = _arrive_all(engine, net, 64)
    assert sorted(outcomes) == list(range(64))
    assert net.barriers_completed == 2
    assert stats.counters["faults.failover.segment_arrivals"] == 32
    assert all(not c.quarantined for c in net.clusters[1:])


def test_without_segment_mode_cluster_fault_quarantines_chip():
    engine, _, net = _hier(**HARDENED)
    net.clusters[0].lines[0].stuck = 0
    _arrive_all(engine, net, 64)
    assert net.clusters[0].quarantined and net.quarantined


def test_healed_cluster_is_readmitted_while_chip_stays_up():
    engine, stats, net = _hier(**RECOVERY, segment_failover=True)
    net.clusters[0].lines[0].stuck = 0
    # Stop at outcome delivery so the wire can heal before the probe.
    outcomes = _arrive_all(engine, net, 64, drain=False)
    assert sorted(outcomes) == list(range(64))
    rec = net.clusters[0].recovery
    assert net.clusters[0].quarantined and rec.state == DEGRADED
    net.clusters[0].lines[0].stuck = None
    engine.run()                       # pending probe passes
    assert rec.state == PROBATION and not net.clusters[0].quarantined
    # The re-admitted cluster runs the next episode on hardware: no new
    # segment arrivals, and a clean probation window restores health.
    before = stats.counters["faults.failover.segment_arrivals"]
    _arrive_all(engine, net, 64)
    assert stats.counters["faults.failover.segment_arrivals"] == before
    assert stats.counters["faults.recovery.readmits"] == 1
    assert net.barriers_completed == 2


def test_still_faulty_cluster_retires_and_segment_keeps_covering():
    engine, _, net = _hier(**RECOVERY, segment_failover=True)
    net.clusters[0].lines[0].stuck = 0
    _arrive_all(engine, net, 64)       # drain: probes burn out, retire
    assert net.clusters[0].recovery.state == QUARANTINED
    assert not net.quarantined
    outcomes = _arrive_all(engine, net, 64)
    assert sorted(outcomes) == list(range(64))
    assert net.barriers_completed == 2


# ---------------------------------------------------------------------- #
# Time-multiplexed slots
# ---------------------------------------------------------------------- #
def _slots(**cfg):
    engine = Engine()
    stats = StatsRegistry(4)
    ctxs = build_time_multiplexed(engine, stats, 2, 2,
                                  GLineConfig(**cfg), num_slots=2)
    return engine, stats, ctxs


def test_slot_fault_degrades_only_that_context():
    engine, _, ctxs = _slots(**RECOVERY)
    ctxs[0].net.lines[0].stuck = 0
    bad = _arrive_all(engine, ctxs[0], 4)
    assert all(a == (FAILOVER,) for a in bad.values())
    assert ctxs[0].quarantined
    assert ctxs[0].recovery.state == QUARANTINED  # probes burned out
    # The sibling slot still synchronizes on the shared wires.
    good = _arrive_all(engine, ctxs[1], 4)
    assert all(a == () for a in good.values())
    assert not ctxs[1].quarantined and ctxs[1].barriers_completed == 1


def test_healed_slot_is_readmitted():
    engine, stats, ctxs = _slots(**RECOVERY)
    ctxs[0].net.lines[0].stuck = 0
    bad = _arrive_all(engine, ctxs[0], 4, drain=False)
    assert all(a == (FAILOVER,) for a in bad.values())
    assert ctxs[0].recovery.state == DEGRADED
    ctxs[0].net.lines[0].stuck = None
    engine.run()
    assert ctxs[0].recovery.state == PROBATION
    good = _arrive_all(engine, ctxs[0], 4)
    assert all(a == () for a in good.values())
    assert stats.counters["faults.recovery.readmits"] == 1
    assert ctxs[0].failover_reports and ctxs[0].failover_reports_dropped == 0
