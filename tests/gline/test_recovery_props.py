"""Property-based tests for the self-healing recovery controller.

Invariants checked over random mesh shapes, fault schedules and recovery
budgets:

1. Probe attempts per degraded spell never exceed ``recovery_max_probes``
   and re-admission flaps never exceed ``recovery_max_flaps`` -- the FSM
   cannot cycle forever.
2. Every scheduled core gets an outcome exactly once per episode
   (hardware release, software FAILOVER bounce, or a mix) -- recovery
   never loses or double-delivers a core.
3. With recovery *disabled*, quarantine is sticky: once the watchdog
   retires the network, no later event un-quarantines it.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.params import GLineConfig
from repro.common.stats import StatsRegistry
from repro.faults import FAILOVER
from repro.gline.network import GLineBarrierNetwork
from repro.gline.recovery import QUARANTINED
from repro.sim.engine import Engine

mesh_shapes = st.tuples(st.integers(1, 4), st.integers(1, 4))
budgets = st.tuples(st.integers(1, 3),   # max_probes
                    st.integers(1, 3),   # max_flaps
                    st.integers(1, 2))   # probation_barriers


def _build(rows, cols, recovery, max_probes=3, max_flaps=2,
           probation=1):
    engine = Engine()
    n = rows * cols
    net = GLineBarrierNetwork(
        engine, StatsRegistry(n), rows, cols,
        GLineConfig(watchdog_budget=24, watchdog_retries=1,
                    recovery_enabled=recovery,
                    recovery_probe_interval=4,
                    recovery_backoff_factor=2,
                    recovery_max_backoff=32,
                    recovery_max_probes=max_probes,
                    recovery_max_flaps=max_flaps,
                    recovery_probation_barriers=probation))
    return engine, net


def _run_episodes(engine, net, episodes, times):
    """Run *episodes* full-mesh barriers; returns per-episode outcomes."""
    n = net.num_cores
    all_outcomes = []
    for ep in range(episodes):
        outcomes = {}
        base = engine.now
        for cid in range(n):
            engine.schedule_at(
                base + times[(ep * n + cid) % len(times)],
                lambda c=cid: net.arrive(
                    c, lambda *a, c=c: outcomes.__setitem__(c, a)))
        engine.run()
        all_outcomes.append(outcomes)
    return all_outcomes


@settings(max_examples=40, deadline=None)
@given(shape=mesh_shapes, budget=budgets, data=st.data())
def test_probe_and_flap_budgets_are_hard_bounds(shape, budget, data):
    rows, cols = shape
    max_probes, max_flaps, probation = budget
    engine, net = _build(rows, cols, recovery=True,
                         max_probes=max_probes, max_flaps=max_flaps,
                         probation=probation)
    if not net.lines:
        return  # 1x1 mesh has no wires to break
    line = net.lines[data.draw(
        st.integers(0, len(net.lines) - 1), label="line")]
    line.stuck = data.draw(st.integers(0, 1), label="polarity")
    times = data.draw(st.lists(st.integers(0, 40), min_size=net.num_cores,
                               max_size=net.num_cores), label="times")
    episodes = data.draw(st.integers(1, 3), label="episodes")
    outcomes = _run_episodes(engine, net, episodes, times)

    rec = net.recovery
    # 1: budgets are hard bounds.
    assert rec._spell_probe_failures <= max_probes
    assert rec.flaps <= max_flaps
    counters = net.fault_stats.counters
    spells = max(counters.get("faults.recovery.degrades", 0), 1)
    assert counters.get("faults.recovery.probe_failures", 0) \
        <= max_probes * spells
    # A permanently stuck wire can never be re-admitted to HEALTHY.
    assert counters.get("faults.recovery.healthy", 0) == 0
    # 2: exactly one outcome per core per episode, every one accounted.
    for per_ep in outcomes:
        assert sorted(per_ep) == list(range(net.num_cores))
    # The FSM came to rest: no event left behind.
    assert engine.pending() == 0
    if rec.state == QUARANTINED:
        assert net.quarantined


@settings(max_examples=40, deadline=None)
@given(shape=mesh_shapes, data=st.data())
def test_recovery_disabled_quarantine_is_sticky(shape, data):
    rows, cols = shape
    engine, net = _build(rows, cols, recovery=False)
    if not net.lines:
        return
    assert net.recovery is None
    line = net.lines[data.draw(
        st.integers(0, len(net.lines) - 1), label="line")]
    line.stuck = data.draw(st.integers(0, 1), label="polarity")
    times = data.draw(st.lists(st.integers(0, 40), min_size=net.num_cores,
                               max_size=net.num_cores), label="times")
    outcomes = _run_episodes(engine, net, 2, times)
    if not net.quarantined:
        return  # this fault was absorbed (e.g. retried through)
    # Sticky even after the wire heals: all later arrivals bounce.
    line.stuck = None
    engine.run()
    assert net.quarantined
    bounced = _run_episodes(engine, net, 1, times)[0]
    assert all(a == (FAILOVER,) for a in bounced.values())
    assert net.quarantined
    for per_ep in outcomes:
        assert sorted(per_ep) == list(range(net.num_cores))
