"""Property-based tests for the G-line barrier network.

Invariants checked over random mesh shapes and arrival schedules:

1. Every core is released, exactly once per episode.
2. No core is released before the last arrival.
3. On a true 2D mesh the release is exactly 4 cycles after the last
   bar_reg write becomes visible (the paper's headline number) --
   independent of arrival order and skew.
4. The network returns to the fully-idle state after each episode.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.params import GLineConfig
from repro.common.stats import StatsRegistry
from repro.gline.network import GLineBarrierNetwork
from repro.sim.engine import Engine

mesh_shapes = st.tuples(st.integers(1, 7), st.integers(1, 7))


@settings(max_examples=60, deadline=None)
@given(shape=mesh_shapes, data=st.data())
def test_single_episode_invariants(shape, data):
    rows, cols = shape
    n = rows * cols
    times = data.draw(st.lists(st.integers(0, 300), min_size=n,
                               max_size=n))
    engine = Engine()
    net = GLineBarrierNetwork(engine, StatsRegistry(n), rows, cols,
                              GLineConfig())
    releases: dict[int, int] = {}
    for cid, t in enumerate(times):
        engine.schedule_at(t, lambda c=cid: net.arrive(
            c, lambda c=c: releases.__setitem__(c, engine.now)))
    engine.run()

    # 1: everyone released exactly once.
    assert sorted(releases) == list(range(n))
    # 2: nobody released before the last bar_reg became visible.
    last_visible = max(times) + net.config.barreg_write_cycles
    assert min(releases.values()) > last_visible
    # 3: exact 4-cycle latency on true 2D meshes (2 for single-row,
    #    bounded small otherwise).
    latency = net.samples[0].latency_after_last_arrival
    if rows >= 2 and cols >= 1:
        assert latency == 4
    elif rows == 1 and cols >= 2:
        assert latency == 2
    else:  # 1x1
        assert latency <= 2
    # Release is simultaneous for every core.
    assert len(set(releases.values())) == 1
    # 4: network cleanly reset.
    assert net.fully_idle()
    assert engine.pending() == 0


@settings(max_examples=25, deadline=None)
@given(shape=st.tuples(st.integers(2, 5), st.integers(2, 5)),
       episodes=st.integers(1, 5), data=st.data())
def test_multi_episode_invariants(shape, episodes, data):
    rows, cols = shape
    n = rows * cols
    # Per-episode per-core extra delays between release and re-arrival.
    delays = data.draw(st.lists(
        st.lists(st.integers(0, 50), min_size=n, max_size=n),
        min_size=episodes, max_size=episodes))
    engine = Engine()
    net = GLineBarrierNetwork(engine, StatsRegistry(n), rows, cols,
                              GLineConfig())
    log: list[tuple[int, int, int]] = []  # (episode, core, release_time)

    def arrive(cid: int, ep: int) -> None:
        net.arrive(cid, lambda: on_release(cid, ep))

    def on_release(cid: int, ep: int) -> None:
        log.append((ep, cid, engine.now))
        if ep + 1 < episodes:
            engine.schedule(delays[ep + 1][cid], arrive, cid, ep + 1)

    for cid in range(n):
        engine.schedule(delays[0][cid], arrive, cid, 0)
    engine.run()

    assert net.barriers_completed == episodes
    assert len(log) == episodes * n
    # Steady-state latency is always exactly 4 on a 2D mesh.
    assert all(s.latency_after_last_arrival == 4 for s in net.samples)
    # Episodes are properly ordered: every release of episode e precedes
    # every release of episode e+1.
    by_ep = {}
    for ep, _cid, t in log:
        by_ep.setdefault(ep, []).append(t)
    for ep in range(episodes - 1):
        assert max(by_ep[ep]) <= min(by_ep[ep + 1])
    assert net.fully_idle()
