"""Self-healing recovery: probe/probation re-admission state machine.

PR 2's quarantine is terminal; with ``recovery_enabled`` the network
probes the wires while degraded, re-admits through a shadow-checked
probation window, damps flapping lines and retires permanently once the
flap or probe budget is exhausted.  With recovery disabled nothing here
may change: quarantine stays sticky and every PR 2 counter is identical.
"""

from dataclasses import replace

from repro.common.params import GLineConfig
from repro.common.stats import StatsRegistry
from repro.faults import FAILOVER
from repro.gline.network import GLineBarrierNetwork
from repro.gline.recovery import (DEGRADED, HEALTHY, PROBATION,
                                  QUARANTINED, RECOVERY_LOG_CAP)
from repro.sim.engine import Engine

RECOVERY = dict(watchdog_budget=32, watchdog_retries=2,
                recovery_enabled=True, recovery_probe_interval=8,
                recovery_backoff_factor=2, recovery_max_backoff=64,
                recovery_probation_barriers=2, recovery_max_flaps=2,
                recovery_max_probes=3)


def build(rows, cols, **cfg):
    engine = Engine()
    stats = StatsRegistry(rows * cols)
    net = GLineBarrierNetwork(engine, stats, rows, cols,
                              GLineConfig(**{**RECOVERY, **cfg}))
    return engine, stats, net


def arrive_all(engine, net, drain=True):
    """Schedule every core's arrival now and run until all outcomes land.

    With *drain* the engine runs completely dry -- which also executes
    any recovery probes pending on the queue.  ``drain=False`` stops at
    the instant the last outcome is delivered, so a test can observe the
    DEGRADED state (and heal the wire) before the first probe fires."""
    outcomes = {}
    for cid in range(net.num_cores):
        engine.schedule_at(engine.now, lambda c=cid: net.arrive(
            c, lambda *a, c=c: outcomes.__setitem__(c, a)))
    if drain:
        engine.run()
    else:
        while len(outcomes) < net.num_cores:
            assert engine.step(), "engine drained before all outcomes"
    return outcomes


def degrade(engine, net, line_index=0):
    """Stick a gather line low and run one episode into failover,
    stopping before the first recovery probe fires."""
    net.lines[line_index].stuck = 0
    outcomes = arrive_all(engine, net, drain=False)
    assert all(a == (FAILOVER,) for a in outcomes.values())
    assert net.quarantined and net.recovery.state == DEGRADED
    return outcomes


# ---------------------------------------------------------------------- #
# Happy path: degrade -> probe -> probation -> healthy
# ---------------------------------------------------------------------- #
def test_healed_fault_is_probed_and_readmitted():
    engine, stats, net = build(2, 2)
    degrade(engine, net)
    net.lines[0].stuck = None          # the intermittent burst ends
    engine.run()                       # pending probe fires, passes
    assert net.recovery.state == PROBATION
    assert not net.quarantined
    assert net.recovery.mttr_samples and net.recovery.mttr_samples[0] > 0
    # Probation barriers run on hardware under the shadow check...
    for _ in range(RECOVERY["recovery_probation_barriers"]):
        assert net.recovery.state == PROBATION
        outcomes = arrive_all(engine, net)
        assert all(a == () for a in outcomes.values())
    # ...and a clean window restores full health.
    assert net.recovery.state == HEALTHY
    assert stats.counters["faults.recovery.readmits"] == 1
    assert stats.counters["faults.recovery.healthy"] == 1


def test_post_recovery_latency_matches_fresh_network():
    """Acceptance: after re-admission, barriers run at the hardware
    golden latency -- indistinguishable from a never-faulted network."""
    engine, _, net = build(2, 2)
    degrade(engine, net)
    net.lines[0].stuck = None
    engine.run()
    for _ in range(3):                 # probation (2) + one healthy
        arrive_all(engine, net)
    recovered = net.samples[-1]

    engine2, _, fresh = build(2, 2)
    arrive_all(engine2, fresh)
    golden = fresh.samples[-1]
    assert (recovered.release - recovered.last_arrival
            == golden.release - golden.last_arrival)


def test_still_faulty_wire_fails_probes_then_retires():
    engine, stats, net = build(2, 2)
    degrade(engine, net)               # stuck-at stays active
    engine.run()                       # probes fire on backoff schedule
    assert net.recovery.state == QUARANTINED
    assert net.quarantined
    assert stats.counters["faults.recovery.probe_failures"] \
        == RECOVERY["recovery_max_probes"]
    # Permanent: later arrivals bounce straight to software, no probes.
    probes_before = net.recovery.probes
    outcomes = arrive_all(engine, net)
    assert all(a == (FAILOVER,) for a in outcomes.values())
    assert net.recovery.probes == probes_before


def test_probe_backoff_is_exponential_and_capped():
    engine, _, net = build(2, 2, recovery_max_probes=5,
                           recovery_max_backoff=16)
    degrade(engine, net)
    rec = net.recovery
    # Backoff doubles per failed probe in the spell, clamped at the cap.
    assert rec._backoff() == 8
    rec._spell_probe_failures = 1
    assert rec._backoff() == 16
    rec._spell_probe_failures = 3
    assert rec._backoff() == 16        # capped


def test_flap_limit_retires_permanently():
    """A load-correlated fault passes idle probes but trips probation:
    each round trip is a flap, and the flap budget ends the cycling."""
    engine, stats, net = build(2, 2, recovery_max_flaps=2)
    degrade(engine, net)
    for expected_flaps in (1, 2):
        # Fault "heals" while degraded (off-degraded class)...
        net.lines[0].stuck = None
        engine.run()                   # probe passes -> probation
        assert net.recovery.state == PROBATION
        # ...then reasserts under load, tripping the probation watchdog.
        net.lines[0].stuck = 0
        outcomes = arrive_all(engine, net, drain=False)
        assert all(a == (FAILOVER,) for a in outcomes.values())
        assert net.recovery.flaps == expected_flaps
    assert net.recovery.state == QUARANTINED
    assert stats.counters["faults.recovery.redegrades"] == 2
    # Sticky: healing the wire now changes nothing.
    net.lines[0].stuck = None
    engine.run()
    assert net.recovery.state == QUARANTINED and net.quarantined


def test_probation_watchdog_redegrades_without_retry_burndown():
    """Zero tolerance: during probation a watchdog trip re-degrades
    immediately instead of burning the retry budget."""
    engine, stats, net = build(2, 2)
    degrade(engine, net)
    retries_after_first = net.retries
    net.lines[0].stuck = None
    engine.run()
    assert net.recovery.state == PROBATION
    net.lines[0].stuck = 0
    outcomes = arrive_all(engine, net, drain=False)
    assert all(a == (FAILOVER,) for a in outcomes.values())
    assert net.retries == retries_after_first   # no new retries
    assert net.recovery.state == DEGRADED


# ---------------------------------------------------------------------- #
# Shadow cross-check
# ---------------------------------------------------------------------- #
class _GlitchInjector:
    """Force one line high during given cycles (between assert/sample)."""

    def __init__(self, line_name, cycles):
        self.line_name = line_name
        self.cycles = set(cycles)
        self.net = None

    def perturb_glines(self, lines, now=None):
        if now in self.cycles:
            for line in lines:
                if line.name.endswith(self.line_name):
                    line.glitch_force = 1


def test_shadow_check_catches_exact_landing_glitch():
    """A one-shot forced-high gather glitch lands the S-CSMA count on
    target with a slave missing -- invisible to every PR 2 guard.  The
    probation shadow cross-check withholds the release and re-degrades."""
    engine, stats, net = build(2, 2, barreg_write_cycles=0)
    net.recovery.state = PROBATION
    net.recovery.probation_left = 2
    net.set_injector(_GlitchInjector("SglineH0", {0}))
    outcomes = {}
    for cid in (0, 2, 3):              # core 1 (row-0 slave) missing
        net.arrive(cid, lambda *a, c=cid: outcomes.__setitem__(c, a))
    engine.run()
    # Everyone who arrived was bounced to software -- nobody released on
    # hardware while core 1 was missing.
    assert all(outcomes[c] == (FAILOVER,) for c in (0, 2, 3))
    assert stats.counters["faults.recovery.shadow_aborts"] == 1
    assert stats.counters["faults.recovery.redegrades"] == 1
    assert net.recovery.flaps == 1
    # The glitch was one-shot, so the post-flap probe passed and the
    # network is back in a *fresh* probation window.
    assert net.recovery.state == PROBATION
    assert net.recovery.probation_left \
        == RECOVERY["recovery_probation_barriers"]


def test_shadow_disabled_mutation_lets_glitch_release_early():
    """The planted verification mutation: without the shadow check the
    same glitch releases the partial cohort (repro.verify catches it)."""
    engine, _, net = build(2, 2, barreg_write_cycles=0)
    net.recovery.state = PROBATION
    net.recovery.probation_left = 2
    net.recovery.shadow_disabled = True
    net.set_injector(_GlitchInjector("SglineH0", {0}))
    outcomes = {}
    for cid in (0, 2, 3):
        net.arrive(cid, lambda *a, c=cid: outcomes.__setitem__(c, a))
    engine.run()
    assert all(outcomes[c] == () for c in (0, 2, 3))   # early release!


# ---------------------------------------------------------------------- #
# PR 2 parity: recovery disabled
# ---------------------------------------------------------------------- #
def test_recovery_disabled_quarantine_is_sticky():
    engine, stats, net = build(2, 2, recovery_enabled=False)
    assert net.recovery is None
    net.lines[0].stuck = 0
    arrive_all(engine, net)
    assert net.quarantined
    net.lines[0].stuck = None          # healing changes nothing
    engine.run()
    assert net.quarantined
    outcomes = arrive_all(engine, net)
    assert all(a == (FAILOVER,) for a in outcomes.values())
    assert "faults.recovery.degrades" not in stats.counters


def test_recovery_disabled_run_is_bit_identical_to_pr2():
    """Event-for-event parity: enabling the *code path* (module import,
    GLBarrier cohort bookkeeping) without the config flag must not move
    a single cycle or counter relative to the hardened PR 2 network."""
    def run(**cfg):
        engine, stats, net = build(2, 2, recovery_enabled=False, **cfg)
        net.lines[0].stuck = 0
        arrive_all(engine, net)
        out2 = arrive_all(engine, net)
        return (engine.now, net.failovers, net.detections, net.retries,
                sorted(stats.counters.items()),
                list(net.failover_reports), {c: a for c, a in out2.items()})

    assert run() == run()


# ---------------------------------------------------------------------- #
# Bounded logs (satellite: no unbounded growth on flapping hardware)
# ---------------------------------------------------------------------- #
def test_failover_reports_are_bounded_with_drop_counter():
    engine, stats, net = build(2, 2, recovery_enabled=False)
    cap = net.failover_reports.maxlen
    for _ in range(cap + 7):
        net.failover()
    assert len(net.failover_reports) == cap
    assert net.failover_reports_dropped == 7
    assert stats.counters["faults.watchdog.reports_dropped"] == 7


def test_recovery_log_is_bounded():
    engine, _, net = build(2, 2)
    rec = net.recovery
    for i in range(RECOVERY_LOG_CAP + 5):
        rec._log(f"event {i}")
    assert len(rec.log) == RECOVERY_LOG_CAP
    assert rec.log_dropped == 5
    assert rec.log[0] == "event 5"     # oldest entries dropped first


# ---------------------------------------------------------------------- #
# Observability events
# ---------------------------------------------------------------------- #
def test_recovery_emits_probe_readmit_redegrade_events():
    from repro.obs import Observability, RingTracer
    from repro.obs import events as obs_ev

    engine, _, net = build(2, 2)
    tracer = RingTracer(capacity=4096)
    net.set_obs(Observability(tracer=tracer))
    degrade(engine, net)
    net.lines[0].stuck = None
    engine.run()                       # probe -> readmit
    net.lines[0].stuck = 0
    arrive_all(engine, net)            # probation trip -> redegrade
    kinds = {e.kind for e in tracer}
    assert obs_ev.GL_PROBE in kinds
    assert obs_ev.GL_READMIT in kinds
    assert obs_ev.GL_REDEGRADE in kinds
