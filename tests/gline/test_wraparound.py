"""Wrap-around boundary tests for the multiplexed barrier contexts.

The time-multiplexing slot arithmetic and the space-multiplexing id
arithmetic both contain modular/affine index computations whose failure
mode is silent: a mis-aligned slot costs correctness of the latency
model, an overflowing sub-mesh wraps core ids onto the next mesh row.
These tests pin the boundaries and cross-check the slot-granularity
latency against the verify model's proven completion bound.
"""

import pytest

from repro.common.errors import ConfigError
from repro.common.params import GLineConfig
from repro.common.stats import StatsRegistry
from repro.gline.multibarrier import build_submesh_context
from repro.gline.timemux import build_time_multiplexed
from repro.sim.engine import Engine
from repro.verify import GLBarrierModel


def build(rows=2, cols=2, num_slots=2, **cfg):
    engine = Engine()
    stats = StatsRegistry(rows * cols)
    ctxs = build_time_multiplexed(engine, stats, rows, cols,
                                  GLineConfig(**cfg), num_slots=num_slots)
    return engine, ctxs


def run_arrivals(engine, ctx, times):
    releases = {}
    for cid, t in enumerate(times):
        engine.schedule_at(t, lambda c=cid: ctx.arrive(
            c, lambda c=c: releases.__setitem__(c, engine.now)))
    engine.run()
    return releases


# ---------------------------------------------------------------------- #
# Slot alignment at the wrap points
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("num_slots", [2, 3, 4])
@pytest.mark.parametrize("slot", [0, 1])
def test_exact_slot_hit_and_just_missed(num_slots, slot):
    """An arrival whose write lands exactly on the context's slot waits
    zero cycles; one cycle later it waits a full period minus one --
    the two edges of the modular alignment."""
    period = num_slots  # line_latency == 1
    write = GLineConfig().barreg_write_cycles
    for offset, extra_wait in [(0, 0), (1, period - 1)]:
        engine, ctxs = build(2, 2, num_slots=num_slots)
        ctx = ctxs[slot]
        # Time the *last* arrival so its write becomes visible at
        # slot + offset (mod period); earlier cores arrive well before.
        base = 5 * period + slot - write + offset
        run_arrivals(engine, ctx, [0, 0, 0, base])
        sample = ctx.samples[0]
        # Visibility is always realigned into the context's slot.
        assert sample.last_arrival % period == slot
        assert sample.last_arrival == base + write + extra_wait
        # And the synchronization itself always costs 3P + 1 from there.
        assert sample.latency_after_last_arrival == 3 * period + 1


@pytest.mark.parametrize("shift", [1, 7, 10**9])
def test_phase_invariance_across_periods(shift):
    """Shifting the whole schedule by any number of cycles -- including
    far beyond any period multiple -- changes release times by exactly
    the schedule realignment, never the synchronization latency."""
    period = 3
    engine_a, ctxs_a = build(2, 2, num_slots=period)
    run_arrivals(engine_a, ctxs_a[1], [0, 1, 2, 3])
    engine_b, ctxs_b = build(2, 2, num_slots=period)
    run_arrivals(engine_b, ctxs_b[1], [shift, shift + 1, shift + 2,
                                       shift + 3])
    a, b = ctxs_a[1].samples[0], ctxs_b[1].samples[0]
    assert a.latency_after_last_arrival == b.latency_after_last_arrival
    assert b.last_arrival % period == a.last_arrival % period == 1


def test_episodes_straddling_slot_wraps():
    """Back-to-back episodes whose arrivals land on period-1, period and
    period+1 cycles all complete with the same 3P + 1 latency."""
    period = 2
    engine, ctxs = build(2, 2, num_slots=period)
    ctx = ctxs[0]
    releases = run_arrivals(engine, ctx, [period - 1, period,
                                          period + 1, period + 2])
    assert len(releases) == 4
    first_release = max(releases.values())
    for cid in range(4):
        engine.schedule_at(first_release + cid, lambda c=cid: ctx.arrive(
            c, lambda: None))
    engine.run()
    assert ctx.barriers_completed == 2
    for sample in ctx.samples:
        assert sample.latency_after_last_arrival == 3 * period + 1
        assert sample.last_arrival % period == 0


# ---------------------------------------------------------------------- #
# Agreement with the verify model at slot granularity
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("shape", [(2, 2), (2, 3), (3, 3)])
@pytest.mark.parametrize("num_slots", [1, 2, 3])
def test_slot_latency_matches_model_bound(shape, num_slots):
    """The verify model proves release exactly ``completion_bound``
    ticks after the last arrival.  A slot context is that same machine
    with one tick per period and the release consumed in one cycle, so
    its latency must be ``(bound - 1) * P + 1`` -- which is 3P + 1 for
    the proven bound of 4 (and exactly 4 at P == 1)."""
    rows, cols = shape
    model = GLBarrierModel(rows, cols)
    engine, ctxs = build(rows, cols, num_slots=num_slots)
    run_arrivals(engine, ctxs[0], [0] * (rows * cols))
    expected = (model.completion_bound - 1) * num_slots + 1
    assert ctxs[0].samples[0].latency_after_last_arrival == expected


# ---------------------------------------------------------------------- #
# Sub-mesh id arithmetic at the column boundary
# ---------------------------------------------------------------------- #
def test_submesh_at_right_edge_is_exact():
    engine, stats = Engine(), StatsRegistry(16)
    net = build_submesh_context(engine, stats, mesh_cols=4, row0=1,
                                col0=2, rows=2, cols=2)
    assert net.core_ids == [6, 7, 10, 11]


def test_submesh_column_overflow_rejected():
    """col0 + cols past the mesh edge must raise, not wrap the core ids
    onto the next mesh row."""
    engine, stats = Engine(), StatsRegistry(16)
    with pytest.raises(ConfigError):
        build_submesh_context(engine, stats, mesh_cols=4, row0=0, col0=3,
                              rows=2, cols=2)
    with pytest.raises(ConfigError):
        build_submesh_context(engine, stats, mesh_cols=4, row0=0,
                              col0=-1, rows=2, cols=2)
