"""Hierarchical G-line barrier tests (the >7x7 extension)."""

import pytest

from repro.common.errors import CapacityError, ConfigError
from repro.common.params import GLineConfig
from repro.common.stats import StatsRegistry
from repro.gline.hierarchical import HierarchicalGLineBarrier, partition
from repro.sim.engine import Engine


def build(rows, cols):
    engine = Engine()
    stats = StatsRegistry(rows * cols)
    net = HierarchicalGLineBarrier(engine, stats, rows, cols,
                                   GLineConfig())
    return engine, net


def arrive_all(engine, net, times=None):
    releases = {}
    n = net.num_cores
    times = times or [0] * n
    for cid, t in enumerate(times):
        engine.schedule_at(
            t, lambda c=cid: net.arrive(
                c, lambda c=c: releases.__setitem__(c, engine.now)))
    engine.run()
    return [releases.get(c) for c in range(n)]


# ---------------------------------------------------------------------- #
def test_partition_even_and_uneven():
    assert partition(14, 7) == [(0, 7), (7, 7)]
    assert partition(10, 7) == [(0, 5), (5, 5)]
    assert partition(7, 7) == [(0, 7)]
    assert partition(15, 7) == [(0, 5), (5, 5), (10, 5)]
    with pytest.raises(ConfigError):
        partition(0, 7)


def test_8x8_barrier_completes():
    engine, net = build(8, 8)
    releases = arrive_all(engine, net)
    assert all(r is not None for r in releases)
    assert len(set(releases)) == 1  # synchronized release
    assert net.barriers_completed == 1


def test_8x8_cluster_structure():
    _, net = build(8, 8)
    assert (net.cluster_rows, net.cluster_cols) == (2, 2)
    assert len(net.clusters) == 4
    for cluster in net.clusters:
        assert cluster.num_cores == 16


def test_14x14_structure_and_completion():
    engine, net = build(14, 14)
    assert len(net.clusters) == 4
    assert all(c.num_cores == 49 for c in net.clusters)
    releases = arrive_all(engine, net)
    assert all(r is not None for r in releases)


def test_latency_between_flat_and_software():
    """Hierarchical latency: more than the flat 4 cycles, far less than a
    software barrier -- and bounded by gather+link+top+release."""
    engine, net = build(8, 8)
    arrive_all(engine, net)
    latency = net.samples[0].latency_after_last_arrival
    assert 4 < latency <= 16


def test_no_release_before_all_clusters_arrive():
    engine, net = build(8, 8)
    released = []
    for cid in range(63):
        net.arrive(cid, lambda c=cid: released.append(c))
    engine.run()
    assert released == []  # one core missing: nobody may pass
    net.arrive(63, lambda: released.append(63))
    engine.run()
    assert len(released) == 64


def test_repeated_episodes():
    engine, net = build(8, 8)
    n = net.num_cores
    state = {"left": n, "round": 0}
    episodes = 5

    def released():
        state["left"] -= 1
        if state["left"] == 0 and state["round"] < episodes - 1:
            state["round"] += 1
            state["left"] = n
            for cid in range(n):
                net.arrive(cid, released)

    for cid in range(n):
        net.arrive(cid, released)
    engine.run()
    assert net.barriers_completed == episodes
    latencies = {s.latency_after_last_arrival for s in net.samples}
    assert len(latencies) == 1  # deterministic steady-state latency


def test_wire_budget_sums_clusters_and_top():
    _, net = build(8, 8)
    # 4 clusters of 4x4 (10 wires each) + a 2x2 top level (6 wires).
    assert net.num_glines == 4 * 10 + 6


def test_staggered_arrivals():
    engine, net = build(8, 8)
    times = [(cid * 37) % 500 for cid in range(64)]
    releases = arrive_all(engine, net, times)
    assert len(set(releases)) == 1
    assert releases[0] > max(times)


def test_too_large_for_two_levels_rejected():
    with pytest.raises(CapacityError):
        build(50, 7)
