"""G-line barrier network tests: the Figure-2 walkthrough and beyond."""

import pytest

from repro.common.errors import CapacityError
from repro.common.params import GLineConfig
from repro.common.stats import StatsRegistry
from repro.gline.network import GLineBarrierNetwork
from repro.sim.engine import Engine


def build(rows, cols, **cfg):
    engine = Engine()
    stats = StatsRegistry(rows * cols)
    net = GLineBarrierNetwork(engine, stats, rows, cols,
                              GLineConfig(**cfg))
    return engine, net


def arrive_all(engine, net, times=None):
    """Arrive every core (optionally at per-core times); returns the list
    of release timestamps in core order."""
    releases = {}
    n = net.num_cores
    times = times or [0] * n
    for cid, t in enumerate(times):
        engine.schedule_at(
            t, lambda c=cid: net.arrive(
                c, lambda c=c: releases.__setitem__(c, engine.now)))
    engine.run()
    return [releases.get(c) for c in range(n)]


# ---------------------------------------------------------------------- #
# The paper's ideal-case latency
# ---------------------------------------------------------------------- #
def test_2x2_four_cycle_walkthrough():
    """Figure 2: with all cores arrived, the barrier takes exactly 4
    cycles (gather-row, gather-col, release-col, release-row)."""
    engine, net = build(2, 2)
    releases = arrive_all(engine, net)
    # bar_reg writes complete at cycle 1; release 4 cycles later.
    assert releases == [5, 5, 5, 5]
    assert net.samples[0].latency_after_last_arrival == 4


@pytest.mark.parametrize("rows,cols", [(2, 2), (2, 3), (3, 3), (4, 4),
                                       (4, 8) if False else (3, 4),
                                       (7, 7), (5, 2)])
def test_four_cycles_for_any_2d_mesh(rows, cols):
    engine, net = build(rows, cols)
    arrive_all(engine, net)
    assert net.samples[0].latency_after_last_arrival == 4


def test_single_row_takes_two_cycles():
    engine, net = build(1, 4)
    arrive_all(engine, net)
    assert net.samples[0].latency_after_last_arrival == 2


def test_single_column_takes_four_cycles():
    engine, net = build(4, 1)
    arrive_all(engine, net)
    assert net.samples[0].latency_after_last_arrival == 4


def test_1x1_degenerate():
    engine, net = build(1, 1)
    releases = arrive_all(engine, net)
    assert releases[0] is not None
    assert net.barriers_completed == 1


# ---------------------------------------------------------------------- #
# Asynchronous arrivals
# ---------------------------------------------------------------------- #
def test_staggered_arrivals_release_after_last():
    engine, net = build(2, 2)
    times = [0, 100, 37, 256]
    releases = arrive_all(engine, net, times)
    assert len(set(releases)) == 1          # everyone released together
    assert releases[0] == 256 + 1 + 4       # write + 4-cycle network
    assert net.samples[0].latency_after_last_arrival == 4
    assert net.samples[0].first_arrival == 1


def test_no_release_before_all_arrive():
    engine, net = build(2, 2)
    released = []
    for cid in range(3):
        net.arrive(cid, lambda c=cid: released.append(c))
    engine.run()  # core 3 never arrives
    assert released == []
    assert net.barriers_completed == 0
    # The network must be dormant (no runaway ticking): queue drained.
    assert engine.pending() == 0


def test_straggler_completes_barrier():
    engine, net = build(2, 2)
    released = []
    for cid in range(3):
        net.arrive(cid, lambda c=cid: released.append(c))
    engine.run()
    net.arrive(3, lambda: released.append(3))
    engine.run()
    assert sorted(released) == [0, 1, 2, 3]


def test_dormancy_costs_no_events_during_wait():
    engine, net = build(7, 7)
    for cid in range(48):  # all but one
        net.arrive(cid, lambda: None)
    engine.run()
    events_before = engine.events_executed
    # Nothing pending; a straggler 1M cycles later costs O(cores) events
    # (its arrival, a handful of ticks, 49 resume callbacks) -- NOT 1M
    # per-cycle ticks.
    engine.schedule(1_000_000, net.arrive, 48, lambda: None)
    engine.run()
    assert engine.events_executed - events_before < 120


# ---------------------------------------------------------------------- #
# Repeated episodes
# ---------------------------------------------------------------------- #
def test_many_sequential_episodes_all_4_cycles():
    engine, net = build(3, 3)
    n = net.num_cores
    episodes = 10
    state = {"left": n, "round": 0}

    def released():
        state["left"] -= 1
        if state["left"] == 0 and state["round"] < episodes - 1:
            state["round"] += 1
            state["left"] = n
            for cid in range(n):
                net.arrive(cid, released)

    for cid in range(n):
        net.arrive(cid, released)
    engine.run()
    assert net.barriers_completed == episodes
    assert all(s.latency_after_last_arrival == 4 for s in net.samples)
    assert net.fully_idle()


# ---------------------------------------------------------------------- #
# Construction constraints
# ---------------------------------------------------------------------- #
def test_mesh_beyond_7x7_rejected():
    with pytest.raises(CapacityError):
        build(8, 8)
    with pytest.raises(CapacityError):
        build(2, 8)


def test_wire_count_matches_paper_formula():
    _, net = build(4, 4)
    assert net.num_glines == 10  # the paper's 16-core example
    _, net = build(2, 2)
    assert net.num_glines == 6


def test_core_ids_remap():
    engine = Engine()
    stats = StatsRegistry(4)
    ids = [10, 11, 20, 21]
    net = GLineBarrierNetwork(engine, stats, 2, 2, GLineConfig(),
                              core_ids=ids)
    released = []
    for cid in ids:
        net.arrive(cid, lambda c=cid: released.append(c))
    engine.run()
    assert sorted(released) == ids


def test_double_arrival_rejected():
    engine, net = build(2, 2)
    net.arrive(0, lambda: None)
    engine.run()
    net.arrive(0, lambda: None)
    with pytest.raises(CapacityError):
        engine.run()


def test_gline_toggles_recorded():
    engine, net = build(2, 2)
    arrive_all(engine, net)
    assert net.stats.gline_toggles > 0
