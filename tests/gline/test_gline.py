"""G-line wire / S-CSMA tests."""

import pytest

from repro.common.errors import CapacityError, GLineError
from repro.gline.gline import GLine


def test_attach_limit_enforced():
    line = GLine("g", max_transmitters=2)
    line.attach("a")
    line.attach("b")
    with pytest.raises(CapacityError):
        line.attach("c")


def test_double_attach_rejected():
    # A duplicate transmitter id is a wiring bug, not a fan-in problem:
    # it must raise the generic GLineError, NOT CapacityError, so callers
    # can distinguish it from hitting the electrical limit.
    line = GLine("g")
    line.attach("a")
    with pytest.raises(GLineError) as exc:
        line.attach("a")
    assert not isinstance(exc.value, CapacityError)
    # ...and the fan-in path still reports CapacityError (see
    # test_attach_limit_enforced for the full check).
    line.attach("b")
    assert line.num_attached == 2


def test_unattached_transmitter_rejected():
    line = GLine("g")
    with pytest.raises(GLineError):
        line.assert_signal("ghost")


def test_scsma_counts_simultaneous_transmitters():
    line = GLine("g", max_transmitters=6)
    for name in "abcde":
        line.attach(name)
    line.assert_signal("a")
    line.assert_signal("c")
    line.assert_signal("e")
    assert line.sample_count() == 3
    assert line.sampled_on()


def test_signals_are_one_cycle_pulses():
    line = GLine("g")
    line.attach("a")
    line.assert_signal("a")
    assert line.sample_count() == 1
    line.end_cycle()
    assert line.sample_count() == 0
    assert not line.sampled_on()


def test_reassert_same_cycle_counts_once():
    line = GLine("g")
    line.attach("a")
    line.assert_signal("a")
    line.assert_signal("a")
    assert line.sample_count() == 1
    assert line.toggles == 1


def test_toggle_counter():
    line = GLine("g")
    line.attach("a")
    line.attach("b")
    for _ in range(3):
        line.assert_signal("a")
        line.end_cycle()
    line.assert_signal("b")
    assert line.toggles == 4
    assert line.num_attached == 2


def test_sample_count_clamps_to_scsma_limit():
    """The sense circuit saturates at ``max_transmitters`` even if more
    transmitters are physically attached (e.g. the limit is derated
    after wiring): forced-high and count-skew read-outs must clamp to
    min(num_attached, max_transmitters), not num_attached."""
    line = GLine("g", max_transmitters=4)
    for i in range(4):
        line.attach(f"t{i}")
    line.max_transmitters = 3  # post-wiring derate
    line.stuck = 1
    assert line.sample_count() == 3
    line.stuck = None
    for i in range(3):
        line.assert_signal(f"t{i}")
    line.count_delta = +5
    assert line.sample_count() == 3
    line.count_delta = -7
    assert line.sample_count() == 0


def test_sample_count_skew_clamp_respects_attached_count():
    # Fewer attached transmitters than the design limit: the attached
    # population is the ceiling.
    line = GLine("g", max_transmitters=6)
    line.attach("a")
    line.attach("b")
    line.assert_signal("a")
    line.count_delta = +9
    assert line.sample_count() == 2
    line.count_delta = 0
    line.stuck = 1
    assert line.sample_count() == 2
