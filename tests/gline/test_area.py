"""Wire/area budget model tests."""

import pytest

from repro.common.errors import ConfigError
from repro.gline.area import (bus_budget, comparison_rows, gline_budget,
                              tree_budget)


def test_gline_budget_matches_paper_formula():
    b = gline_budget(4, 4)
    assert b.wires == 10
    # 8 horizontal wires spanning 3 tile edges + 2 vertical spanning 3.
    assert b.length == 8 * 3 + 2 * 3
    assert b.max_fanin == 3


def test_gline_budget_scales_with_contexts():
    assert gline_budget(4, 4, contexts=3).wires == 30


def test_tree_budget_links():
    b = tree_budget(2, 2)
    # 4 leaves -> 3 internal links, up+down wires each.
    assert b.wires == 6
    assert b.length > 0
    assert b.max_fanin == 1


def test_bus_budget():
    b = bus_budget(4, 4)
    assert b.wires == 2
    assert b.length == 2 * 15
    assert b.max_fanin == 16  # the wired-OR scalability problem


def test_gline_cheaper_than_tree_at_scale():
    for rows, cols in ((4, 4), (4, 8), (7, 7)):
        gl = gline_budget(rows, cols)
        tree = tree_budget(rows, cols)
        assert gl.length < tree.length, (rows, cols)


def test_comparison_rows_complete():
    rows = comparison_rows(4, 8)
    assert [b.organization for b in rows] == [
        "G-line network", "dedicated reduction tree",
        "global wired-OR bus"]


def test_invalid_mesh():
    with pytest.raises(ConfigError):
        gline_budget(0, 4)
