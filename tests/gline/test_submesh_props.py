"""Property-based independence of multibarrier contexts.

Random disjoint sub-meshes of one chip, each carrying its own barrier
context, with fully interleaved arrival schedules: every context must
release exactly its own cores, releases never couple across contexts
(a context's release time depends only on its own last arrival), and
full-chip multibarrier contexts stay episode-independent under
interleaving.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.params import GLineConfig
from repro.common.stats import StatsRegistry
from repro.gline.multibarrier import build_contexts, build_submesh_context
from repro.sim.engine import Engine


def submesh_ids(mesh_cols, row0, col0, rows, cols):
    return [(row0 + r) * mesh_cols + (col0 + c)
            for r in range(rows) for c in range(cols)]


@st.composite
def disjoint_submeshes(draw):
    """A mesh plus two vertically stacked, disjoint sub-meshes of it."""
    mesh_cols = draw(st.integers(2, 7))
    rows_a = draw(st.integers(1, 3))
    rows_b = draw(st.integers(1, 3))
    gap = draw(st.integers(0, 2))
    cols_a = draw(st.integers(1, mesh_cols))
    cols_b = draw(st.integers(1, mesh_cols))
    col0_a = draw(st.integers(0, mesh_cols - cols_a))
    col0_b = draw(st.integers(0, mesh_cols - cols_b))
    row0_b = rows_a + gap
    mesh_rows = row0_b + rows_b
    return (mesh_rows, mesh_cols,
            (0, col0_a, rows_a, cols_a),
            (row0_b, col0_b, rows_b, cols_b))


@settings(max_examples=40, deadline=None)
@given(layout=disjoint_submeshes(), data=st.data())
def test_disjoint_submesh_contexts_are_independent(layout, data):
    mesh_rows, mesh_cols, box_a, box_b = layout
    engine = Engine()
    stats = StatsRegistry(mesh_rows * mesh_cols)
    config = GLineConfig()
    nets = [build_submesh_context(engine, stats, mesh_cols, *box,
                                  config=config, name=f"sub{i}")
            for i, box in enumerate((box_a, box_b))]
    members = [submesh_ids(mesh_cols, *box) for box in (box_a, box_b)]
    assert not set(members[0]) & set(members[1])

    releases: list[dict[int, int]] = [{}, {}]
    arrivals: list[dict[int, int]] = [{}, {}]
    for i, net in enumerate(nets):
        for cid in members[i]:
            t = data.draw(st.integers(0, 60), label=f"t[{i}][{cid}]")
            arrivals[i][cid] = t
            engine.schedule_at(t, lambda c=cid, n=net, i=i: n.arrive(
                c, lambda c=c, i=i: releases[i].__setitem__(c, engine.now)))
    engine.run()

    for i in (0, 1):
        # Exactly this context's cores released, simultaneously, after
        # this context's own last arrival -- the sibling is irrelevant.
        assert sorted(releases[i]) == sorted(members[i])
        assert len(set(releases[i].values())) == 1
        last = max(arrivals[i].values())
        assert min(releases[i].values()) > \
            last + nets[i].config.barreg_write_cycles
        assert nets[i].fully_idle()
    assert engine.pending() == 0


@settings(max_examples=25, deadline=None)
@given(shape=st.tuples(st.integers(1, 5), st.integers(1, 5)),
       data=st.data())
def test_full_chip_contexts_stay_independent_under_interleaving(shape,
                                                                data):
    """Two full-chip multibarrier contexts, arrivals interleaved at
    random: each context releases on its own schedule."""
    rows, cols = shape
    n = rows * cols
    engine = Engine()
    stats = StatsRegistry(n)
    config = GLineConfig(num_barriers=2)
    nets = build_contexts(engine, stats, rows, cols, config)
    assert len(nets) == 2

    releases: list[dict[int, int]] = [{}, {}]
    lasts = [0, 0]
    for i, net in enumerate(nets):
        for cid in range(n):
            t = data.draw(st.integers(0, 40), label=f"t[{i}][{cid}]")
            lasts[i] = max(lasts[i], t)
            engine.schedule_at(t, lambda c=cid, nt=net, i=i: nt.arrive(
                c, lambda c=c, i=i: releases[i].__setitem__(c, engine.now)))
    engine.run()

    for i in (0, 1):
        assert sorted(releases[i]) == list(range(n))
        assert len(set(releases[i].values())) == 1
        assert min(releases[i].values()) > \
            lasts[i] + config.barreg_write_cycles
    assert engine.pending() == 0
