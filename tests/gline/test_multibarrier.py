"""Multi-context and sub-mesh barrier tests (space multiplexing)."""

import pytest

from helpers import make_chip, run_uniform
from repro.common.errors import CapacityError, ConfigError
from repro.common.params import GLineConfig
from repro.common.stats import StatsRegistry
from repro.cpu import isa
from repro.gline.hierarchical import HierarchicalGLineBarrier
from repro.gline.multibarrier import (build_contexts, build_submesh_context,
                                      total_wires)
from repro.gline.network import GLineBarrierNetwork
from repro.sim.engine import Engine


def test_build_contexts_counts():
    engine, stats = Engine(), StatsRegistry(16)
    ctxs = build_contexts(engine, stats, 4, 4,
                          GLineConfig(num_barriers=3))
    assert len(ctxs) == 3
    assert all(isinstance(c, GLineBarrierNetwork) for c in ctxs)
    assert total_wires(ctxs) == 30


def test_build_contexts_falls_back_to_hierarchical():
    engine, stats = Engine(), StatsRegistry(64)
    ctxs = build_contexts(engine, stats, 8, 8, GLineConfig())
    assert isinstance(ctxs[0], HierarchicalGLineBarrier)


def test_two_barrier_contexts_on_chip():
    """Cores alternate between two independent barrier contexts."""
    chip = make_chip(4, "gl",)
    # Rebuild with two contexts.
    from repro import CMPConfig
    from repro.chip import CMP
    cfg = CMPConfig.for_cores(4).with_(
        gline=GLineConfig(num_barriers=2))
    chip = CMP(cfg, barrier="gl")

    def prog(cid):
        yield isa.BarrierOp(0)
        yield isa.BarrierOp(1)
        yield isa.BarrierOp(0)

    res = run_uniform(chip, prog)
    assert chip.stats.num_barriers() == 3
    assert chip.barrier_impl.networks[0].barriers_completed == 2
    assert chip.barrier_impl.networks[1].barriers_completed == 1


def test_unprovisioned_context_rejected():
    chip = make_chip(4, "gl")

    def prog(cid):
        yield isa.BarrierOp(5)

    with pytest.raises(ConfigError):
        run_uniform(chip, prog)


def test_submesh_context():
    """A context spanning only half the chip synchronizes those cores."""
    engine, stats = Engine(), StatsRegistry(16)
    # Left 4x2 half of a 4x4 chip: global tile ids 0,1, 4,5, 8,9, 12,13.
    net = build_submesh_context(engine, stats, mesh_cols=4, row0=0, col0=0,
                                rows=4, cols=2)
    expected_ids = [0, 1, 4, 5, 8, 9, 12, 13]
    assert net.core_ids == expected_ids
    released = []
    for cid in expected_ids:
        net.arrive(cid, lambda c=cid: released.append(c))
    engine.run()
    assert sorted(released) == expected_ids


def test_submesh_validation():
    engine, stats = Engine(), StatsRegistry(64)
    with pytest.raises(CapacityError):
        build_submesh_context(engine, stats, mesh_cols=10, row0=0, col0=0,
                              rows=8, cols=8)
    with pytest.raises(ConfigError):
        build_submesh_context(engine, stats, mesh_cols=4, row0=0, col0=0,
                              rows=0, cols=2)
