"""Time-multiplexed barrier context tests."""

import pytest

from repro.common.errors import ConfigError
from repro.common.params import GLineConfig
from repro.common.stats import StatsRegistry
from repro.cpu import isa
from repro.gline.barrier import GLBarrier
from repro.gline.timemux import build_time_multiplexed, physical_wires
from repro.sim.engine import Engine

from helpers import make_chip, run_uniform
from repro import CMP, CMPConfig


def build(rows=2, cols=2, num_slots=2):
    engine = Engine()
    stats = StatsRegistry(rows * cols)
    ctxs = build_time_multiplexed(engine, stats, rows, cols,
                                  GLineConfig(), num_slots=num_slots)
    return engine, ctxs


def arrive_all(engine, ctx, n, times=None):
    releases = {}
    times = times or [0] * n
    for cid, t in enumerate(times):
        engine.schedule_at(t, lambda c=cid: ctx.arrive(
            c, lambda c=c: releases.__setitem__(c, engine.now)))
    engine.run()
    return releases


def test_latency_is_3p_plus_1():
    # Three inter-stage hand-offs of one slot period each + the 1-cycle
    # release consumption: 3*P + 1 (reduces to 4 when P == 1).
    engine, ctxs = build(2, 2, num_slots=2)
    arrive_all(engine, ctxs[0], 4)
    assert ctxs[0].samples[0].latency_after_last_arrival == 7


def test_three_slots():
    engine, ctxs = build(2, 2, num_slots=3)
    arrive_all(engine, ctxs[1], 4)
    assert ctxs[1].samples[0].latency_after_last_arrival == 10


def test_slot_alignment_of_arrivals():
    """Context k's bar_reg writes become visible only in slot-k cycles."""
    engine, ctxs = build(2, 2, num_slots=2)
    releases = arrive_all(engine, ctxs[1], 4, times=[0, 1, 2, 3])
    # All released together, after alignment + 8-cycle synchronization.
    assert len(set(releases.values())) == 1


def test_two_contexts_interleave_on_shared_wires():
    engine, ctxs = build(2, 2, num_slots=2)
    done = []
    for cid in range(4):
        ctxs[0].arrive(cid, lambda c=cid: done.append((0, c)))
        ctxs[1].arrive(cid, lambda c=cid: done.append((1, c)))
    engine.run()
    assert len(done) == 8
    assert ctxs[0].barriers_completed == 1
    assert ctxs[1].barriers_completed == 1


def test_physical_wire_budget_is_single_network():
    _, ctxs = build(4, 4, num_slots=4)
    assert physical_wires(ctxs) == 10  # one 16-core network, not four


def test_invalid_slot_count():
    engine = Engine()
    with pytest.raises(ConfigError):
        build_time_multiplexed(engine, StatsRegistry(4), 2, 2,
                               num_slots=0)


def test_on_chip_via_glbarrier():
    cfg = CMPConfig.for_cores(4)
    chip = CMP(cfg, barrier="gl")
    ctxs = build_time_multiplexed(chip.engine, chip.stats, 2, 2,
                                  cfg.gline, num_slots=2)
    chip.barrier_impl = GLBarrier(ctxs, cfg.gline)
    for tile in chip.tiles:
        tile.core.barrier_binding = chip.barrier_impl

    def prog(cid):
        yield isa.BarrierOp(0)
        yield isa.BarrierOp(1)
        yield isa.BarrierOp(0)

    run_uniform(chip, prog)
    assert ctxs[0].barriers_completed == 2
    assert ctxs[1].barriers_completed == 1
    assert chip.stats.num_barriers() == 3
