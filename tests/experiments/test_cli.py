"""CLI tests (invoking main() in-process)."""

import pytest

from repro.cli import ABLATIONS, WORKLOADS, build_parser, main


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path_factory, monkeypatch):
    """Keep CLI invocations from touching the user's real result cache."""
    monkeypatch.setenv("REPRO_CACHE_DIR",
                       str(tmp_path_factory.mktemp("cli-cache")))


def test_table1_command(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out and "32" in out


def test_run_command_with_verify(capsys):
    rc = main(["run", "--workload", "kern3", "--barrier", "gl",
               "--cores", "4", "--scale", "0.05", "--verify"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "barrier=GL" in out
    assert "verified" in out


def test_run_command_dsw(capsys):
    rc = main(["run", "--workload", "synthetic", "--barrier", "dsw",
               "--cores", "4", "--scale", "0.02"])
    assert rc == 0
    assert "barrier=DSW" in capsys.readouterr().out


def test_ablation_subset(capsys):
    rc = main(["ablations", "overhead", "--cores", "4"])
    assert rc == 0
    assert "entry overhead" in capsys.readouterr().out


def test_out_directory_saves_files(tmp_path, capsys):
    rc = main(["table1", "--out", str(tmp_path)])
    assert rc == 0
    assert (tmp_path / "table1.txt").exists()


def test_fig5_jobs_and_cache_round_trip(tmp_path, capsys):
    """Cold parallel run populates the cache; the warm rerun is all hits
    and byte-identical on stdout."""
    args = ["fig5", "--iterations", "1", "--jobs", "2",
            "--cache-dir", str(tmp_path)]
    assert main(args) == 0
    cold = capsys.readouterr()
    assert "cache hits (0%)" in cold.err
    assert main(args) == 0
    warm = capsys.readouterr()
    assert "(100%), 0 simulated" in warm.err
    assert warm.out == cold.out


def test_no_cache_flag_disables_cache(tmp_path, capsys):
    rc = main(["fig5", "--iterations", "1", "--no-cache",
               "--cache-dir", str(tmp_path)])
    assert rc == 0
    err = capsys.readouterr().err
    assert "cache hits" not in err          # no summary when disabled
    assert not any(tmp_path.iterdir())      # nothing written


def test_parser_rejects_unknown_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["nonsense"])


def test_workload_registry_complete():
    assert set(WORKLOADS) == {"synthetic", "kern2", "kern3", "kern6",
                              "ocean", "unstructured", "em3d"}
    assert set(ABLATIONS) == {"period", "overhead", "hierarchical",
                              "arity", "contention", "csw", "nocmodel"}


def test_workload_factories_scale():
    for factory in WORKLOADS.values():
        wl = factory(0.01)
        assert wl.info().num_barriers >= 1


# ---------------------------------------------------------------------- #
# trace command (repro.obs)
# ---------------------------------------------------------------------- #
def test_trace_command_all_formats(tmp_path, capsys):
    from repro.obs import parse_vcd, validate_perfetto
    import json

    for fmt, ext in [("perfetto", "json"), ("vcd", "vcd"),
                     ("jsonl", "jsonl")]:
        out = tmp_path / f"trace.{ext}"
        rc = main(["trace", "fig5", "--format", fmt, "--out", str(out),
                   "--iterations", "1", "--cores", "4",
                   "--cache-dir", str(tmp_path / "cache")])
        assert rc == 0
        captured = capsys.readouterr()
        assert "events retained" in captured.err
        assert "barrier=GL" in captured.out
        assert out.exists()
        if fmt == "perfetto":
            assert validate_perfetto(json.loads(out.read_text())) > 0
        elif fmt == "vcd":
            assert "glnet.SglineV.level" in parse_vcd(out.read_text())
        else:
            lines = out.read_text().splitlines()
            assert lines and all(
                json.loads(ln)["kind"] for ln in lines)


def test_trace_writes_metrics_snapshot(tmp_path):
    metrics = tmp_path / "metrics.json"
    rc = main(["trace", "fig5", "--iterations", "1", "--cores", "4",
               "--out", str(tmp_path / "t.json"), "--no-cache",
               "--metrics", str(metrics)])
    assert rc == 0
    import json
    snap = json.loads(metrics.read_text())
    assert snap["counters"]["gline.episodes"] >= 1
    assert "gline.episode_latency" in snap["histograms"]


def test_trace_seeds_cache_for_untraced_fig5(tmp_path, capsys):
    """Tracing a fig5 point stores its (metrics-stripped) result: the
    untraced figure run hits the cache for that point and its table is
    byte-identical to a fully-simulated one."""
    cache = str(tmp_path / "cache")
    assert main(["fig5", "--iterations", "1",
                 "--cache-dir", str(tmp_path / "fresh")]) == 0
    golden = capsys.readouterr().out

    assert main(["trace", "fig5", "--iterations", "1", "--cores", "4",
                 "--barrier", "gl", "--out", str(tmp_path / "t.json"),
                 "--cache-dir", cache]) == 0
    traced = capsys.readouterr()
    assert "artifact keyed at" in traced.err

    assert main(["fig5", "--iterations", "1", "--cache-dir", cache]) == 0
    warm = capsys.readouterr()
    assert "1/12 cache hits" in warm.err
    assert warm.out == golden


def test_trace_keys_artifact_next_to_cache_entry(tmp_path):
    cache = tmp_path / "cache"
    assert main(["trace", "fig5", "--iterations", "1", "--cores", "4",
                 "--out", str(tmp_path / "t.vcd"), "--format", "vcd",
                 "--cache-dir", str(cache)]) == 0
    keyed = list(cache.glob("*/*.trace.vcd"))
    assert len(keyed) == 1
    assert keyed[0].read_bytes() == (tmp_path / "t.vcd").read_bytes()
    # The stripped result entry sits beside it.
    assert keyed[0].with_name(
        keyed[0].name.replace(".trace.vcd", ".json")).exists()
