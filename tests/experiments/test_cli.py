"""CLI tests (invoking main() in-process)."""

import pytest

from repro.cli import ABLATIONS, WORKLOADS, build_parser, main


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path_factory, monkeypatch):
    """Keep CLI invocations from touching the user's real result cache."""
    monkeypatch.setenv("REPRO_CACHE_DIR",
                       str(tmp_path_factory.mktemp("cli-cache")))


def test_table1_command(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out and "32" in out


def test_run_command_with_verify(capsys):
    rc = main(["run", "--workload", "kern3", "--barrier", "gl",
               "--cores", "4", "--scale", "0.05", "--verify"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "barrier=GL" in out
    assert "verified" in out


def test_run_command_dsw(capsys):
    rc = main(["run", "--workload", "synthetic", "--barrier", "dsw",
               "--cores", "4", "--scale", "0.02"])
    assert rc == 0
    assert "barrier=DSW" in capsys.readouterr().out


def test_ablation_subset(capsys):
    rc = main(["ablations", "overhead", "--cores", "4"])
    assert rc == 0
    assert "entry overhead" in capsys.readouterr().out


def test_out_directory_saves_files(tmp_path, capsys):
    rc = main(["table1", "--out", str(tmp_path)])
    assert rc == 0
    assert (tmp_path / "table1.txt").exists()


def test_fig5_jobs_and_cache_round_trip(tmp_path, capsys):
    """Cold parallel run populates the cache; the warm rerun is all hits
    and byte-identical on stdout."""
    args = ["fig5", "--iterations", "1", "--jobs", "2",
            "--cache-dir", str(tmp_path)]
    assert main(args) == 0
    cold = capsys.readouterr()
    assert "cache hits (0%)" in cold.err
    assert main(args) == 0
    warm = capsys.readouterr()
    assert "(100%), 0 simulated" in warm.err
    assert warm.out == cold.out


def test_no_cache_flag_disables_cache(tmp_path, capsys):
    rc = main(["fig5", "--iterations", "1", "--no-cache",
               "--cache-dir", str(tmp_path)])
    assert rc == 0
    err = capsys.readouterr().err
    assert "cache hits" not in err          # no summary when disabled
    assert not any(tmp_path.iterdir())      # nothing written


def test_parser_rejects_unknown_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["nonsense"])


def test_workload_registry_complete():
    assert set(WORKLOADS) == {"synthetic", "kern2", "kern3", "kern6",
                              "ocean", "unstructured", "em3d"}
    assert set(ABLATIONS) == {"period", "overhead", "hierarchical",
                              "arity", "contention", "csw", "nocmodel"}


def test_workload_factories_scale():
    for factory in WORKLOADS.values():
        wl = factory(0.01)
        assert wl.info().num_barriers >= 1
