"""Stage-decomposition and sensitivity-experiment tests."""

import pytest

from repro.experiments import (gl_is_platform_insensitive,
                               l2_latency_sweep, memory_latency_sweep,
                               router_latency_sweep, run_stages)
from repro.experiments.stages import decompose
from repro.experiments.runner import run_benchmark
from repro.workloads import (Kernel3Workload, SyntheticBarrierWorkload,
                             UnstructuredWorkload)


def test_synthetic_is_mechanism_dominated_under_dsw():
    run = run_benchmark(SyntheticBarrierWorkload(iterations=10), "dsw", 8)
    s2, sync = decompose(run)
    # Back-to-back barriers: almost no imbalance wait.
    assert sync > s2


def test_imbalanced_workload_is_s2_dominated_even_under_gl():
    wl = UnstructuredWorkload(nodes=512, phases=3, skew=0.5)
    for impl in ("dsw", "gl"):
        run = run_benchmark(wl, impl, 8)
        s2, sync = decompose(run)
        assert s2 > sync, f"{impl}: expected S2-dominated"


def test_gl_collapses_mechanism_cycles():
    wl = Kernel3Workload(n=64, iterations=10)
    dsw = run_benchmark(wl, "dsw", 8)
    gl = run_benchmark(wl, "gl", 8)
    assert decompose(gl)[1] < 0.2 * decompose(dsw)[1]


def test_run_stages_table():
    result = run_stages(num_cores=4, workloads={
        "KERN3": Kernel3Workload(n=64, iterations=5)})
    assert len(result.rows) == 2
    assert 0 <= result.s2_share("KERN3", "GL") <= 1
    assert "S2" in result.table()
    with pytest.raises(KeyError):
        result.s2_share("NOPE", "GL")


# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("sweep_fn", [memory_latency_sweep,
                                      router_latency_sweep,
                                      l2_latency_sweep])
def test_gl_is_insensitive_software_is_not(sweep_fn):
    sweep = sweep_fn(num_cores=8, iterations=10)
    assert gl_is_platform_insensitive(sweep)
    dsw_values = [row[1] for row in sweep.rows]
    # Software barrier cost strictly grows with the swept latency.
    assert dsw_values == sorted(dsw_values)
    assert dsw_values[-1] > dsw_values[0]
