"""Software-barrier shoot-out experiment tests."""

from repro.experiments.software_barriers import run_shootout


def test_shootout_small():
    result = run_shootout(core_counts=(4, 8), iterations=8)
    assert set(result.cycles_per_barrier) == {"csw", "dsw", "diss",
                                              "tour", "gl"}
    # GL wins outright at both sizes.
    for cores in (4, 8):
        name, best = result.best_software(cores)
        assert name != "gl"
        assert result.cycles_per_barrier["gl"][cores] < best
        assert result.gl_margin(cores) > 3
    assert "shoot-out" in result.table()


def test_dissemination_beats_combining_tree():
    result = run_shootout(core_counts=(16,), impls=("dsw", "diss", "gl"),
                          iterations=10)
    cpb = result.cycles_per_barrier
    assert cpb["diss"][16] < cpb["dsw"][16]


def test_margin_grows_with_cores():
    result = run_shootout(core_counts=(4, 16), iterations=10)
    assert result.gl_margin(16) > result.gl_margin(4)
