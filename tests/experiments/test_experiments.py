"""Experiment-driver tests (tiny configurations)."""

import pytest

from repro.experiments import (ComputeBarrierWorkload, compare,
                               entry_overhead_sweep, matches_paper,
                               period_sweep, run_benchmark, run_fig5,
                               run_fig6, run_fig7, run_table1, run_table2)
from repro.workloads import Kernel3Workload, SyntheticBarrierWorkload


def test_run_benchmark_smoke():
    res = run_benchmark(SyntheticBarrierWorkload(iterations=5), "gl",
                        num_cores=4)
    assert res.num_barriers() == 20


def test_compare_pairs_runs():
    comp = compare(Kernel3Workload(n=64, iterations=3), num_cores=4)
    assert comp.baseline.barrier_name == "DSW"
    assert comp.treated.barrier_name == "GL"
    assert 0 < comp.time_ratio < 1
    assert 0 <= comp.traffic_ratio < 1


def test_table1_matches_paper():
    assert matches_paper()
    out = run_table1()
    assert "32" in out and "400 cycles" in out


def test_fig5_small():
    r = run_fig5(core_counts=(2, 4), impls=("dsw", "gl"), iterations=5)
    assert r.is_ordered()
    assert r.cycles_per_barrier["gl"][4] == pytest.approx(13.0, abs=1.0)
    assert "Figure 5" in r.table()


def test_fig6_small():
    wl = {"KERN3": Kernel3Workload(n=64, iterations=5)}
    r = run_fig6(num_cores=4, workloads=wl)
    comp = r.comparisons["KERN3"]
    assert comp.normalized_treated_total < 1.0
    assert "KERN3" in r.table()
    assert "barrier" in r.stacked_table()


def test_fig7_small():
    wl = {"KERN3": Kernel3Workload(n=64, iterations=5)}
    r = run_fig7(num_cores=4, workloads=wl)
    comp = r.comparisons["KERN3"]
    assert comp.normalized_treated_total < 1.0
    assert "Figure 7" in r.table()


def test_table2_small():
    r = run_table2(num_cores=4, scale=0.02)
    assert len(r.rows) == 7
    names = r.period_ordering()
    assert set(names) == {"Synthetic", "KERN2", "KERN3", "KERN6",
                          "OCEAN", "UNSTR", "EM3D"}
    # The applications have the longest periods (the paper's key split).
    assert names[-1] in ("OCEAN", "UNSTR")
    assert "Table 2" in r.table()


def test_period_sweep_shows_diminishing_benefit():
    r = period_sweep(work_grains=(0, 5_000), num_cores=4, iterations=5)
    ratios = [row[3] for row in r.rows]
    # More work between barriers -> GL's advantage shrinks (ratio -> 1).
    assert ratios[0] < ratios[1] <= 1.05


def test_entry_overhead_sweep_monotone():
    r = entry_overhead_sweep(overheads=(0, 8), num_cores=4, iterations=10)
    per_barrier = [row[1] for row in r.rows]
    assert per_barrier[0] < per_barrier[1]
    assert per_barrier[0] == pytest.approx(5.0, abs=0.5)  # 1 write + 4 net


def test_compute_barrier_workload():
    from helpers import make_chip
    chip = make_chip(2, "gl")
    res = chip.run(ComputeBarrierWorkload(work_cycles=100, iterations=3))
    assert res.num_barriers() == 3
    assert res.total_cycles >= 300
