"""Energy-experiment tests."""

from repro.experiments.energy_exp import run_energy
from repro.workloads import Kernel3Workload, EM3DWorkload


def small_workloads():
    return {
        "KERN3": Kernel3Workload(n=64, iterations=8),
        "EM3D": EM3DWorkload(nodes=128, steps=2, barriers_per_step=4),
    }


def test_energy_reduction_positive_for_fine_grain():
    result = run_energy(num_cores=4, workloads=small_workloads())
    assert len(result.rows) == 2
    assert result.average_reduction() > 0
    for _name, e_dsw, e_gl in result.rows:
        assert e_gl.total < e_dsw.total


def test_gline_energy_share_is_small():
    result = run_energy(num_cores=4, workloads=small_workloads())
    # 1-bit wires vs 75-byte mesh links.  At this deliberately tiny test
    # scale the data network carries little traffic, so allow up to 15%;
    # at bench scale (32 cores) the share drops to ~1-2%.
    assert result.gline_share() < 0.15


def test_energy_table_renders():
    result = run_energy(num_cores=4, workloads=small_workloads())
    text = result.table()
    assert "KERN3" in text and "GL/DSW" in text
