"""Shared test utilities."""

from __future__ import annotations

from typing import Callable, Generator

from repro import CMP, CMPConfig
from repro.common.params import GLineConfig


def make_chip(num_cores: int = 4, barrier: str = "gl",
              entry_overhead: int | None = None, **overrides) -> CMP:
    """A small chip with Table-1-style defaults, convenient for tests."""
    cfg = CMPConfig.for_cores(num_cores, **overrides)
    if entry_overhead is not None:
        cfg = cfg.with_(gline=GLineConfig(entry_overhead=entry_overhead))
    return CMP(cfg, barrier=barrier)


def run_uniform(chip: CMP, program_factory: Callable[[int], Generator],
                **kw):
    """Run ``program_factory(cid)`` on every core of *chip*."""
    return chip.run([program_factory(c) for c in range(chip.num_cores)],
                    **kw)


class MemHarness:
    """Direct L1-level access harness (no cores): issues loads/stores on a
    chip's caches and lets the engine run to completion after each call.
    Used by coherence-protocol tests to script exact access interleavings.
    """

    def __init__(self, chip: CMP):
        self.chip = chip

    def load(self, tile: int, addr: int) -> int:
        box: list = []
        self.chip.tiles[tile].l1.load(addr, box.append)
        self.chip.engine.run()
        assert box, f"load on tile {tile} never completed"
        return box[0]

    def store(self, tile: int, addr: int, value: int) -> None:
        box: list = []
        self.chip.tiles[tile].l1.store(addr, value,
                                       lambda: box.append(True))
        self.chip.engine.run()
        assert box, f"store on tile {tile} never completed"

    def atomic(self, tile: int, addr: int, fn) -> int:
        box: list = []
        self.chip.tiles[tile].l1.atomic(addr, fn, box.append)
        self.chip.engine.run()
        assert box, f"atomic on tile {tile} never completed"
        return box[0]

    def state(self, tile: int, addr: int):
        return self.chip.tiles[tile].l1.state_of(addr)

    def dir_state(self, addr: int):
        home = self.chip.amap.home_of(addr)
        line = self.chip.amap.line_of(addr)
        return self.chip.tiles[home].home.dir_state(line)
