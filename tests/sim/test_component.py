"""Component base-class tests."""

from repro.common.stats import StatsRegistry
from repro.sim.component import Component
from repro.sim.engine import Engine


def test_component_schedule_and_now():
    engine = Engine()
    stats = StatsRegistry(1)
    comp = Component(engine, stats, "c0")
    hits = []
    comp.schedule(5, lambda: hits.append(comp.now))
    engine.run()
    assert hits == [5]
    assert comp.now == 5


def test_component_priority_passthrough():
    engine = Engine()
    comp = Component(engine, StatsRegistry(1), "c")
    order = []
    comp.schedule(1, lambda: order.append("late"), priority=5)
    comp.schedule(1, lambda: order.append("early"), priority=0)
    engine.run()
    assert order == ["early", "late"]
