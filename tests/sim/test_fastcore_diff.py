"""Differential oracle: the batched kernel vs the heap reference.

Two layers of Hypothesis-driven comparison:

* **engine level** -- random event scripts (nested scheduling, zero
  delays, mixed priorities, cancellations, run/step/until/max_events
  interleavings) executed on both backends, asserting the *exact* global
  ``(time, priority, seq)`` execution order via ``order_log``.  This is
  the acceptance criterion's >= 200-example suite: ordering is where a
  batched kernel can silently diverge, so it gets the volume.
* **chip level** -- random workloads and fault plans through
  :func:`repro.sim.dualrun.run_dual`, asserting identical StatsRegistry
  dumps, barrier release cycles, RunResults and (on a subset) full trace
  streams.

Plus the cache-key corollary: since results are bit-identical, both
backends must share exec-cache entries.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.params import CMPConfig, GLineConfig
from repro.exec.spec import RunSpec
from repro.faults.plan import FaultPlan
from repro.sim import Engine, FastEngine
from repro.sim.dualrun import run_dual
from repro.workloads import Kernel2Workload, SyntheticBarrierWorkload
from repro.workloads.stress import StressWorkload


# ---------------------------------------------------------------------- #
# Engine level: random event scripts, exact order equality
# ---------------------------------------------------------------------- #
#: One scripted action: (delay, priority, children, cancel_child).
#: ``children`` spawn from inside the callback; ``cancel_child`` cancels
#: the handle of a sibling scheduled in the same callback.
_action = st.tuples(st.integers(0, 30),
                    st.sampled_from([-2, -1, 0, 0, 0, 0, 1, 3, 10]),
                    st.integers(0, 3),
                    st.booleans())


def _run_script(engine, actions, stop_cycle):
    """Deterministically replay *actions* on *engine*; returns the full
    observable outcome (order log includes time/priority/seq)."""
    engine.order_log = []
    trace = []
    pool = list(actions)

    def cb(tag):
        trace.append((tag, engine.now))
        if engine.now >= stop_cycle or not pool:
            return
        delay, priority, children, cancel_child = pool.pop()
        handles = [engine.schedule(delay + i, cb, f"{tag}.{i}",
                                   priority=priority)
                   for i in range(children)]
        if cancel_child and handles:
            engine.cancel(handles[len(handles) // 2])

    for i, (delay, priority, _, _) in enumerate(actions[:12]):
        engine.schedule(delay, cb, f"root{i}", priority=priority)
    engine.run()
    return (trace, engine.order_log, engine.now, engine.events_executed,
            engine.pending())


@settings(max_examples=200, deadline=None)
@given(actions=st.lists(_action, min_size=1, max_size=60),
       stop_cycle=st.integers(10, 300))
def test_engine_order_identical_across_backends(actions, stop_cycle):
    reference = _run_script(Engine(), actions, stop_cycle)
    batched = _run_script(FastEngine(), actions, stop_cycle)
    assert batched == reference


@settings(max_examples=60, deadline=None)
@given(actions=st.lists(_action, min_size=1, max_size=40),
       budgets=st.lists(st.integers(1, 25), min_size=1, max_size=5),
       until_step=st.integers(5, 50))
def test_engine_budgeted_run_identical_across_backends(actions, budgets,
                                                       until_step):
    """Interleaved max_events slices, until windows and single steps must
    leave both backends in identical externally-visible states."""
    outcomes = []
    for engine in (Engine(), FastEngine()):
        engine.order_log = []
        pool = list(actions)

        def cb(tag):
            if not pool:
                return
            delay, priority, children, _ = pool.pop()
            for i in range(min(children, 2)):
                engine.schedule(delay + i, cb, f"{tag}.{i}",
                                priority=priority)

        for i, (delay, priority, _, _) in enumerate(actions[:10]):
            engine.schedule(delay, cb, f"r{i}", priority=priority)
        states = []
        for budget in budgets:
            engine.run(max_events=engine.events_executed + budget)
            states.append((engine.now, engine.events_executed,
                           engine.pending()))
            engine.step()
            engine.run(until=engine.now + until_step)
            states.append((engine.now, engine.events_executed,
                           engine.pending()))
        engine.run()
        outcomes.append((states, engine.order_log, engine.now,
                         engine.events_executed))
    assert outcomes[0] == outcomes[1]


# ---------------------------------------------------------------------- #
# Chip level: random workloads + fault plans through the dual-run oracle
# ---------------------------------------------------------------------- #
def _barrier_release_cycles(report):
    """Per-barrier release cycles from the oracle's stats (the paper's
    ground-truth timeline)."""
    samples = report.result.stats.to_dict().get("barriers", [])
    return [s["release"] for s in samples]


@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_chip_runs_identical_across_backends(data):
    num_cores = data.draw(st.sampled_from([4, 8, 16]))
    barrier = data.draw(st.sampled_from(["gl", "dsw", "csw"]))
    workload = data.draw(st.sampled_from([
        SyntheticBarrierWorkload(iterations=3),
        SyntheticBarrierWorkload(iterations=6, barriers_per_iter=2),
        Kernel2Workload(iterations=2),
        StressWorkload(ops_per_core=25, barriers=3, seed=11),
        StressWorkload(ops_per_core=40, barriers=2, seed=99),
    ]))
    compare_traces = data.draw(st.booleans())
    report = run_dual(workload, CMPConfig.for_cores(num_cores),
                      barrier=barrier, compare_traces=compare_traces)
    assert report.error is None
    assert report.events_executed == report.order_entries > 0


@settings(max_examples=15, deadline=None)
@given(data=st.data())
def test_chip_runs_identical_under_faults(data):
    """Fault injection (including watchdog failover paths) must stay
    bit-identical too -- faults are seeded, so they are part of the
    deterministic contract."""
    plan = FaultPlan(
        gline_stuck_rate=data.draw(st.sampled_from([0.0, 1e-3, 5e-3])),
        gline_glitch_rate=data.draw(st.sampled_from([0.0, 1e-2])),
        scsma_miscount_rate=data.draw(st.sampled_from([0.0, 1e-2])),
        seed=data.draw(st.integers(0, 2**16)))
    gline = GLineConfig(watchdog_budget=200, watchdog_episode_budget=4000)
    config = CMPConfig.for_cores(8).with_(faults=plan, gline=gline)
    workload = StressWorkload(
        ops_per_core=20, barriers=3,
        seed=data.draw(st.integers(0, 2**16)))
    report = run_dual(workload, config, barrier="gl",
                      max_cycles=300_000)
    # Both sides agreed -- completed identically or failed identically.
    assert report.events_executed == report.order_entries


def test_chip_traced_run_identical_with_barrier_releases():
    """One fully-traced run; release cycles are present and the trace
    streams matched event for event (run_dual raises otherwise)."""
    report = run_dual(SyntheticBarrierWorkload(iterations=5),
                      CMPConfig.for_cores(16), barrier="gl",
                      compare_traces=True)
    assert report.trace_entries > 0
    releases = _barrier_release_cycles(report)
    assert len(releases) == 20 and sorted(releases) == releases


# ---------------------------------------------------------------------- #
# Cache-key corollary: backends share exec-cache entries
# ---------------------------------------------------------------------- #
def test_backends_share_cache_key():
    workload = SyntheticBarrierWorkload(iterations=4)
    spec_heap = RunSpec.make(workload, "gl", num_cores=8,
                             config=CMPConfig.for_cores(8).with_(
                                 sim_backend="heap"))
    spec_batched = RunSpec.make(workload, "gl", num_cores=8,
                                config=CMPConfig.for_cores(8).with_(
                                    sim_backend="batched"))
    assert spec_heap.key() == spec_batched.key()
    assert "sim_backend" not in spec_heap.fingerprint()["config"]


def test_sim_backend_survives_config_roundtrip():
    cfg = CMPConfig.for_cores(8).with_(sim_backend="batched")
    assert CMPConfig.from_dict(cfg.to_dict()).sim_backend == "batched"
    # Old-format dicts (pre-backend) default to the reference engine.
    legacy = cfg.to_dict()
    del legacy["sim_backend"]
    assert CMPConfig.from_dict(legacy).sim_backend == "heap"


def test_unknown_backend_rejected_at_config_time():
    from repro.common.errors import ConfigError
    with pytest.raises(ConfigError):
        CMPConfig.for_cores(4).with_(sim_backend="numpy")
