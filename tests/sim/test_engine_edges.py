"""Engine edge cases backfilled while building the dual-run oracle.

Every test is parametrized over both backends: the semantics pinned here
are the contract `repro.sim.fastcore` must honour, so a behavioural
drift in either engine fails the same test.
"""

import pytest

from repro.common.errors import SimulationError
from repro.obs.tracer import NULL_TRACER, RingTracer
from repro.sim import BACKENDS, Engine, FastEngine, make_engine


@pytest.fixture(params=sorted(BACKENDS))
def eng(request):
    return make_engine(request.param)


# ---------------------------------------------------------------------- #
# make_engine / backend registry
# ---------------------------------------------------------------------- #
def test_make_engine_backends():
    assert isinstance(make_engine("heap"), Engine)
    assert isinstance(make_engine("batched"), FastEngine)
    with pytest.raises(SimulationError):
        make_engine("vectorized")


# ---------------------------------------------------------------------- #
# schedule-at-now ordering
# ---------------------------------------------------------------------- #
def test_schedule_at_now_runs_after_queued_same_cycle_events(eng):
    """A schedule_at(now) issued mid-cycle gets a later seq, so it runs
    after every already-queued same-cycle event of equal priority."""
    order = []

    def spawn():
        eng.schedule_at(7, order.append, "spawned")

    eng.schedule(7, spawn)
    eng.schedule(7, order.append, "queued")
    eng.run()
    assert order == ["queued", "spawned"]


def test_schedule_at_now_priority_still_wins(eng):
    order = []

    def spawn():
        eng.schedule_at(3, order.append, "urgent", priority=-5)

    eng.schedule(3, spawn, priority=-9)
    eng.schedule(3, order.append, "normal")
    eng.run()
    assert order == ["urgent", "normal"]


def test_schedule_at_now_after_drain_reopens_current_cycle(eng):
    """After run() drains at cycle T, scheduling at T again is legal and
    executes at T (the step()-driven REPL pattern)."""
    eng.schedule(10, lambda: None)
    eng.run()
    fired = []
    eng.schedule_at(10, fired.append, True)
    assert eng.step()
    assert fired and eng.now == 10


# ---------------------------------------------------------------------- #
# cancel
# ---------------------------------------------------------------------- #
def test_cancel_before_run(eng):
    fired = []
    handle = eng.schedule(5, fired.append, True)
    eng.cancel(handle)
    eng.run()
    assert not fired
    assert eng.events_executed == 0
    # The clock still advances through the cancelled event's cycle.
    assert eng.now == 5


def test_cancel_during_run_from_callback(eng):
    fired = []
    handle = eng.schedule(9, fired.append, "victim")
    eng.schedule(4, lambda: eng.cancel(handle))
    eng.schedule(9, fired.append, "survivor")
    eng.run()
    assert fired == ["survivor"]
    assert eng.events_executed == 2


def test_cancel_same_cycle_later_event(eng):
    """Cancelling a same-cycle, not-yet-run event takes effect."""
    fired = []

    def killer():
        eng.cancel(handle)

    eng.schedule(3, killer, priority=-1)
    handle = eng.schedule(3, fired.append, True)
    eng.run()
    assert not fired


def test_cancel_executed_or_unknown_handle_is_noop(eng):
    fired = []
    handle = eng.schedule(1, fired.append, True)
    eng.run()
    eng.cancel(handle)          # already executed
    eng.cancel(987654)          # never existed
    eng.schedule(1, fired.append, True)
    eng.run()
    assert fired == [True, True]
    assert eng.events_executed == 2


def test_cancelled_events_do_not_consume_max_events_budget(eng):
    fired = []
    h = eng.schedule(1, fired.append, "dead")
    eng.cancel(h)
    eng.schedule(2, fired.append, "alive")
    eng.run(max_events=1)
    assert fired == ["alive"]


def test_cancelled_events_count_as_pending_until_reaped(eng):
    h = eng.schedule(5, lambda: None)
    eng.cancel(h)
    assert eng.pending() == 1
    eng.run()
    assert eng.pending() == 0


def test_cancel_during_step(eng):
    fired = []
    eng.schedule(1, fired.append, "a")
    victim = eng.schedule(2, fired.append, "b")
    eng.schedule(3, fired.append, "c")
    assert eng.step()
    eng.cancel(victim)
    assert eng.step()           # reaps b silently, executes c
    assert fired == ["a", "c"]
    assert not eng.step()


# ---------------------------------------------------------------------- #
# tracer swap mid-run
# ---------------------------------------------------------------------- #
def test_tracer_attached_mid_run_sees_run_end(eng):
    tracer = RingTracer(capacity=None)

    def attach():
        eng.tracer = tracer

    eng.schedule(5, attach)
    eng.run()
    kinds = [e.kind for e in tracer.events]
    # Attached after run.begin was (not) emitted; run.end must appear.
    assert kinds == ["engine.run.end"]
    assert tracer.events[0].detail["pending"] == 0


def test_tracer_detached_mid_run_suppresses_run_end(eng):
    tracer = RingTracer(capacity=None)
    eng.tracer = tracer

    def detach():
        eng.tracer = NULL_TRACER

    eng.schedule(5, detach)
    eng.run()
    kinds = [e.kind for e in tracer.events]
    assert kinds == ["engine.run.begin"]


def test_tracer_swap_between_runs(eng):
    first, second = RingTracer(capacity=None), RingTracer(capacity=None)
    eng.tracer = first
    eng.schedule(1, lambda: None)
    eng.run()
    eng.tracer = second
    eng.schedule(1, lambda: None)
    eng.run()
    assert [e.kind for e in first.events] == ["engine.run.begin",
                                              "engine.run.end"]
    assert [e.kind for e in second.events] == ["engine.run.begin",
                                               "engine.run.end"]
    assert second.events[0].detail["pending"] == 1


# ---------------------------------------------------------------------- #
# events_executed accounting under exceptions
# ---------------------------------------------------------------------- #
def test_events_executed_counts_the_raising_event(eng):
    def boom():
        raise RuntimeError("injected")

    eng.schedule(1, lambda: None)
    eng.schedule(2, boom)
    eng.schedule(3, lambda: None)
    with pytest.raises(RuntimeError):
        eng.run()
    # The event that raised was executed (its side effects happened).
    assert eng.events_executed == 2
    assert eng.now == 2
    assert eng.pending() == 1
    # The engine recovers: the remaining event still runs.
    eng.run()
    assert eng.events_executed == 3


def test_exception_releases_reentrancy_latch(eng):
    def boom():
        raise ValueError("x")

    eng.schedule(1, boom)
    with pytest.raises(ValueError):
        eng.run()
    fired = []
    eng.schedule(1, fired.append, True)
    eng.run()                    # must not raise "not reentrant"
    assert fired


# ---------------------------------------------------------------------- #
# run(until < now): the clock-rewind bug, fixed
# ---------------------------------------------------------------------- #
def test_run_until_in_the_past_rejected(eng):
    """run(until=X) with X < now used to *rewind* the clock when a
    future event existed, corrupting every later timestamp."""
    eng.schedule(10, lambda: None)
    eng.schedule(100, lambda: None)
    eng.run(until=50)
    assert eng.now == 50
    with pytest.raises(SimulationError):
        eng.run(until=20)
    assert eng.now == 50         # clock untouched by the rejected call
    eng.run()                    # engine still usable
    assert eng.now == 100


def test_run_until_equal_to_now_is_allowed(eng):
    eng.schedule(10, lambda: None)
    eng.run()
    fired = []
    eng.schedule_at(10, fired.append, True)
    eng.run(until=10)            # same-cycle drain, legal
    assert fired and eng.now == 10


# ---------------------------------------------------------------------- #
# order_log probe
# ---------------------------------------------------------------------- #
def test_order_log_records_executed_events_only(eng):
    eng.order_log = []
    victim = eng.schedule(2, lambda: None)
    eng.cancel(victim)
    eng.schedule(1, lambda: None, priority=3)
    eng.run()
    assert [(t, p) for t, p, _seq, _name in eng.order_log] == [(1, 3)]


def test_schedule_returns_monotonic_handles(eng):
    handles = [eng.schedule(1, lambda: None) for _ in range(5)]
    handles.append(eng.schedule_at(2, lambda: None))
    assert handles == sorted(handles)
    assert len(set(handles)) == len(handles)
