"""The dual-run oracle itself: reports, and -- crucially -- that it
actually *catches* divergent backends.

A differential rig that never fires is worthless, so these tests swap
deliberately-broken engines into the backend registry and assert
:class:`DualRunDivergence` is raised with a useful message.
"""

import pytest

import repro.sim as sim
from repro.common.errors import DeadlockError
from repro.common.params import CMPConfig
from repro.sim.dualrun import DualRunDivergence, _first_diff, run_dual
from repro.sim.engine import Engine
from repro.workloads import SyntheticBarrierWorkload


@pytest.fixture
def broken_backend(monkeypatch):
    """Temporarily replace the 'batched' backend; yields a setter."""

    def install(cls):
        monkeypatch.setitem(sim.BACKENDS, "batched", cls)

    return install


# ---------------------------------------------------------------------- #
def test_report_fields_on_clean_run():
    report = run_dual(SyntheticBarrierWorkload(iterations=3),
                      CMPConfig.for_cores(4), barrier="gl")
    assert report.error is None
    assert report.result is not None
    assert report.result.total_cycles > 0
    assert report.events_executed == report.order_entries > 0
    assert report.trace_entries == 0        # untraced by default


def test_report_error_when_both_sides_fail_identically():
    # 4 programs for 4 cores, but one never reaches the barrier.
    class LopsidedWorkload(SyntheticBarrierWorkload):
        def programs(self, chip):
            programs = super().programs(chip)
            programs[0] = iter(())          # core 0 does nothing
            return programs

    report = run_dual(LopsidedWorkload(iterations=1),
                      CMPConfig.for_cores(4), barrier="gl")
    assert report.error is not None and "Deadlock" in report.error
    assert report.result is None


# ---------------------------------------------------------------------- #
class _SwappedPriorityEngine(Engine):
    """Runs same-cycle events in *reversed* priority order."""

    def schedule(self, delay, callback, *args, priority=0):
        return super().schedule(delay, callback, *args,
                                priority=-priority)


class _LaggingEngine(Engine):
    """Every event lands one cycle late."""

    def schedule(self, delay, callback, *args, priority=0):
        return super().schedule(delay + 1, callback, *args,
                                priority=priority)


class _CrashingEngine(Engine):
    """Deadlocks by dropping every 1000th event."""

    def schedule(self, delay, callback, *args, priority=0):
        seq = self._seq + 1
        handle = super().schedule(delay, callback, *args,
                                  priority=priority)
        if seq % 1000 == 0:
            self.cancel(handle)
        return handle


def test_divergent_priority_order_is_caught(broken_backend):
    broken_backend(_SwappedPriorityEngine)
    with pytest.raises(DualRunDivergence) as exc:
        run_dual(SyntheticBarrierWorkload(iterations=2),
                 CMPConfig.for_cores(4), barrier="gl")
    assert "diverged" in str(exc.value)


def test_divergent_timing_is_caught(broken_backend):
    broken_backend(_LaggingEngine)
    with pytest.raises(DualRunDivergence):
        run_dual(SyntheticBarrierWorkload(iterations=2),
                 CMPConfig.for_cores(4), barrier="gl")


def test_one_sided_failure_is_caught(broken_backend):
    broken_backend(_CrashingEngine)
    with pytest.raises(DualRunDivergence) as exc:
        run_dual(SyntheticBarrierWorkload(iterations=4),
                 CMPConfig.for_cores(8), barrier="dsw")
    assert "outcome mismatch" in str(exc.value)


def test_divergence_points_at_first_differing_entry():
    assert "entry 1" in _first_diff([(1, 0), (2, 0)], [(1, 0), (2, 1)])
    assert "length mismatch" in _first_diff([(1, 0)], [(1, 0), (2, 0)])


# ---------------------------------------------------------------------- #
def test_deadlock_errors_match_between_real_backends():
    """Sanity: a genuine deadlock raises DeadlockError identically on
    both real backends (covered via run_dual's error-equivalence path),
    and directly on each chip."""
    from repro.chip.cmp import CMP

    class LopsidedWorkload(SyntheticBarrierWorkload):
        def programs(self, chip):
            programs = super().programs(chip)
            programs[0] = iter(())
            return programs

    messages = []
    for backend in ("heap", "batched"):
        chip = CMP(CMPConfig.for_cores(4).with_(sim_backend=backend),
                   barrier="gl")
        with pytest.raises(DeadlockError) as exc:
            chip.run(LopsidedWorkload(iterations=1))
        messages.append(str(exc.value))
    assert messages[0] == messages[1]
