"""Event-engine kernel tests: ordering, determinism, budgets."""

import pytest

from repro.common.errors import SimulationError
from repro.sim.engine import Engine


def test_runs_in_time_order():
    eng = Engine()
    order = []
    eng.schedule(30, order.append, "c")
    eng.schedule(10, order.append, "a")
    eng.schedule(20, order.append, "b")
    eng.run()
    assert order == ["a", "b", "c"]
    assert eng.now == 30


def test_same_time_fifo_by_schedule_order():
    eng = Engine()
    order = []
    for tag in "abcde":
        eng.schedule(5, order.append, tag)
    eng.run()
    assert order == list("abcde")


def test_priority_breaks_same_cycle_ties():
    eng = Engine()
    order = []
    eng.schedule(5, order.append, "late", priority=10)
    eng.schedule(5, order.append, "early", priority=0)
    eng.run()
    assert order == ["early", "late"]


def test_nested_scheduling_from_callback():
    eng = Engine()
    seen = []

    def first():
        seen.append(("first", eng.now))
        eng.schedule(7, second)

    def second():
        seen.append(("second", eng.now))

    eng.schedule(3, first)
    eng.run()
    assert seen == [("first", 3), ("second", 10)]


def test_zero_delay_runs_at_same_time():
    eng = Engine()
    times = []
    eng.schedule(4, lambda: eng.schedule(0, lambda: times.append(eng.now)))
    eng.run()
    assert times == [4]


def test_negative_delay_rejected():
    eng = Engine()
    with pytest.raises(SimulationError):
        eng.schedule(-1, lambda: None)


def test_schedule_at_past_rejected():
    eng = Engine()
    eng.schedule(10, lambda: eng.schedule_at(5, lambda: None))
    with pytest.raises(SimulationError):
        eng.run()


def test_run_until_stops_before_future_events():
    eng = Engine()
    fired = []
    eng.schedule(100, fired.append, True)
    eng.run(until=50)
    assert not fired
    assert eng.now == 50
    assert eng.pending() == 1
    eng.run()
    assert fired


def test_run_until_advances_clock_even_with_empty_queue():
    eng = Engine()
    eng.run(until=42)
    assert eng.now == 42


def test_max_events_budget():
    eng = Engine()
    count = []
    for _ in range(10):
        eng.schedule(1, count.append, 1)
    eng.run(max_events=3)
    assert len(count) == 3
    eng.run()
    assert len(count) == 10


def test_step_single_event():
    eng = Engine()
    hits = []
    eng.schedule(2, hits.append, "x")
    eng.schedule(4, hits.append, "y")
    assert eng.step()
    assert hits == ["x"]
    assert eng.step()
    assert hits == ["x", "y"]
    assert not eng.step()


def test_events_executed_counter():
    eng = Engine()
    for _ in range(5):
        eng.schedule(1, lambda: None)
    eng.run()
    assert eng.events_executed == 5


def test_not_reentrant():
    eng = Engine()
    problems = []

    def recurse():
        try:
            eng.run()
        except SimulationError:
            problems.append(True)

    eng.schedule(1, recurse)
    eng.run()
    assert problems == [True]


def test_priority_and_seq_order_lexicographically():
    """Same cycle: priority dominates, schedule order breaks priority ties."""
    eng = Engine()
    order = []
    eng.schedule(5, order.append, "p1-first", priority=1)
    eng.schedule(5, order.append, "p0-first", priority=0)
    eng.schedule(5, order.append, "p1-second", priority=1)
    eng.schedule(5, order.append, "p0-second", priority=0)
    eng.run()
    assert order == ["p0-first", "p0-second", "p1-first", "p1-second"]


def test_negative_priority_runs_before_default():
    eng = Engine()
    order = []
    eng.schedule(5, order.append, "default")
    eng.schedule(5, order.append, "urgent", priority=-1)
    eng.run()
    assert order == ["urgent", "default"]


def test_priority_never_overrides_time_order():
    eng = Engine()
    order = []
    eng.schedule(4, order.append, "later", priority=-99)
    eng.schedule(2, order.append, "sooner", priority=99)
    eng.run()
    assert order == ["sooner", "later"]


def test_callback_scheduled_events_sort_into_current_cycle_by_priority():
    """Zero-delay events from a callback interleave with already-queued
    same-cycle events according to (priority, seq)."""
    eng = Engine()
    order = []

    def spawn():
        eng.schedule(0, order.append, "spawned-p1", priority=1)
        eng.schedule(0, order.append, "spawned-p0", priority=0)

    eng.schedule(5, spawn, priority=-1)
    eng.schedule(5, order.append, "queued-p2", priority=2)
    eng.run()
    assert order == ["spawned-p0", "spawned-p1", "queued-p2"]


def test_step_respects_priority_order():
    eng = Engine()
    order = []
    eng.schedule(3, order.append, "second", priority=5)
    eng.schedule(3, order.append, "first", priority=0)
    assert eng.step()
    assert order == ["first"]
    assert eng.step()
    assert order == ["first", "second"]


def test_schedule_at_past_rejected_at_top_level():
    eng = Engine()
    eng.schedule(10, lambda: None)
    eng.run()
    assert eng.now == 10
    with pytest.raises(SimulationError):
        eng.schedule_at(5, lambda: None)


def test_schedule_at_current_cycle_is_allowed():
    eng = Engine()
    eng.schedule(10, lambda: None)
    eng.run()
    fired = []
    eng.schedule_at(10, fired.append, True)
    eng.run()
    assert fired and eng.now == 10


def test_negative_delay_from_callback_propagates_and_engine_recovers():
    eng = Engine()
    eng.schedule(1, lambda: eng.schedule(-3, lambda: None))
    with pytest.raises(SimulationError):
        eng.run()
    # The failed run must release the reentrancy latch and keep the
    # engine usable.
    fired = []
    eng.schedule(1, fired.append, True)
    eng.run()
    assert fired


def test_reentrant_call_leaves_outer_run_intact():
    eng = Engine()
    order = []

    def recurse():
        with pytest.raises(SimulationError):
            eng.run()
        order.append("recurse")

    eng.schedule(1, recurse)
    eng.schedule(2, order.append, "after")
    eng.run()
    assert order == ["recurse", "after"]
    assert eng.now == 2


def test_deterministic_across_instances():
    def build_and_run():
        eng = Engine()
        log = []
        # Interleaved delays with callback-driven rescheduling.
        def tick(tag, delay):
            log.append((tag, eng.now))
            if eng.now < 50:
                eng.schedule(delay, tick, tag, delay)
        eng.schedule(0, tick, "a", 3)
        eng.schedule(0, tick, "b", 5)
        eng.run()
        return log

    assert build_and_run() == build_and_run()
