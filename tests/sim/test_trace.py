"""Tracer tests."""

from repro.sim.trace import NULL_TRACER, ListTracer


def test_null_tracer_discards():
    NULL_TRACER.emit(1, "x", "kind", detail=1)  # must not raise
    assert not NULL_TRACER.enabled


def test_list_tracer_records():
    tr = ListTracer()
    tr.emit(5, "core0", "load", addr=0x100)
    tr.emit(6, "core1", "store", addr=0x200)
    assert len(tr.events) == 2
    assert tr.events[0].time == 5
    assert tr.events[0].detail["addr"] == 0x100
    assert [e.kind for e in tr.of_kind("store")] == ["store"]


def test_list_tracer_kind_filter():
    tr = ListTracer(kinds={"load"})
    tr.emit(1, "a", "load")
    tr.emit(2, "a", "store")
    assert [e.kind for e in tr.events] == ["load"]


def test_list_tracer_clear():
    tr = ListTracer()
    tr.emit(1, "a", "x")
    tr.clear()
    assert tr.events == []
