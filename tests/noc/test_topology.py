"""2D-mesh topology and XY-routing tests."""

import pytest

from repro.common.errors import ConfigError
from repro.noc.topology import Mesh2D


def test_coords_round_trip():
    mesh = Mesh2D(4, 8)
    for t in range(32):
        r, c = mesh.coords(t)
        assert mesh.tile_at(r, c) == t


def test_hops_manhattan():
    mesh = Mesh2D(4, 8)
    assert mesh.hops(0, 0) == 0
    assert mesh.hops(0, 7) == 7
    assert mesh.hops(0, 31) == 3 + 7
    assert mesh.hops(9, 18) == mesh.hops(18, 9)


def test_route_is_xy():
    mesh = Mesh2D(4, 4)
    # From (0,1) to (2,3): X first (to col 3) then Y (to row 2).
    path = mesh.route(1, 11)
    assert path == [1, 2, 3, 7, 11]


def test_route_endpoints_and_adjacency():
    mesh = Mesh2D(3, 5)
    for src in range(15):
        for dst in range(15):
            path = mesh.route(src, dst)
            assert path[0] == src and path[-1] == dst
            assert len(path) == mesh.hops(src, dst) + 1
            for a, b in zip(path, path[1:]):
                assert b in mesh.neighbors(a)


def test_route_westward_and_northward():
    mesh = Mesh2D(3, 3)
    assert mesh.route(8, 0) == [8, 7, 6, 3, 0]


def test_neighbors_at_corners_and_center():
    mesh = Mesh2D(3, 3)
    assert sorted(mesh.neighbors(0)) == [1, 3]
    assert sorted(mesh.neighbors(4)) == [1, 3, 5, 7]
    assert sorted(mesh.neighbors(8)) == [5, 7]


def test_bad_tile_rejected():
    mesh = Mesh2D(2, 2)
    with pytest.raises(ConfigError):
        mesh.coords(4)
    with pytest.raises(ConfigError):
        mesh.tile_at(2, 0)
    with pytest.raises(ConfigError):
        Mesh2D(0, 3)
