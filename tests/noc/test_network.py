"""Mesh network timing and accounting tests."""

from repro.common.params import NocConfig
from repro.common.stats import MsgCat, StatsRegistry
from repro.noc.link import Link
from repro.noc.network import Network
from repro.noc.packet import Message
from repro.sim.engine import Engine


def build(rows=2, cols=2, **kw):
    engine = Engine()
    stats = StatsRegistry(rows * cols)
    net = Network(engine, stats, NocConfig(rows=rows, cols=cols, **kw))
    return engine, stats, net


def send(net, src, dst, kind="GetS", cat=MsgCat.REQUEST, size=8, on=None):
    msg = Message(src=src, dst=dst, kind=kind, category=cat,
                  size_bytes=size, on_delivery=on)
    net.send(msg)
    return msg


def test_zero_load_latency_formula():
    engine, stats, net = build(2, 2)
    got = []
    msg = send(net, 0, 3, on=lambda m: got.append(engine.now))
    engine.run()
    # 2 hops; per hop: flits(1) + link(1) + router(3); + injection router(3)
    assert got == [net.zero_load_latency(0, 3, 8)]
    assert got == [3 + 2 * (1 + 1 + 3)]
    assert msg.hops == 2


def test_larger_messages_serialize_longer():
    engine, _, net = build(2, 2, link_width_bytes=8)
    times = {}
    send(net, 0, 1, size=8, on=lambda m: times.setdefault("small",
                                                          engine.now))
    engine.run()
    engine2, _, net2 = build(2, 2, link_width_bytes=8)
    send(net2, 0, 1, size=64, on=lambda m: times.setdefault("big",
                                                            engine2.now))
    engine2.run()
    assert times["big"] == times["small"] + 7  # 8 flits vs 1


def test_contention_serializes_same_link():
    engine, _, net = build(1, 2, link_width_bytes=8)
    arrivals = []
    for _ in range(3):
        send(net, 0, 1, size=64, on=lambda m: arrivals.append(engine.now))
    engine.run()
    assert len(arrivals) == 3
    # Each 8-flit message occupies the link for 8 cycles; arrivals are
    # spaced by at least the serialization time.
    assert arrivals[1] - arrivals[0] >= 8
    assert arrivals[2] - arrivals[1] >= 8


def test_contention_disabled_is_parallel():
    engine, _, net = build(1, 2, link_width_bytes=8,
                           model_contention=False)
    arrivals = []
    for _ in range(3):
        send(net, 0, 1, size=64, on=lambda m: arrivals.append(engine.now))
    engine.run()
    assert arrivals[0] == arrivals[1] == arrivals[2]


def test_local_delivery_not_counted_as_traffic():
    engine, stats, net = build(2, 2)
    got = []
    send(net, 1, 1, on=lambda m: got.append(engine.now))
    engine.run()
    assert got == [net.config.router_latency]
    assert stats.total_messages() == 0
    assert stats.counters["noc.local_deliveries"] == 1


def test_category_accounting():
    engine, stats, net = build(2, 2)
    send(net, 0, 1, cat=MsgCat.REQUEST)
    send(net, 0, 3, cat=MsgCat.REPLY, size=72)
    send(net, 3, 0, cat=MsgCat.COHERENCE)
    engine.run()
    assert stats.messages[MsgCat.REQUEST] == 1
    assert stats.messages[MsgCat.REPLY] == 1
    assert stats.messages[MsgCat.COHERENCE] == 1
    assert stats.hop_flits[MsgCat.REPLY] == 2  # 1 flit x 2 hops


def test_router_accounting():
    engine, _, net = build(1, 3)
    send(net, 0, 2)
    engine.run()
    assert net.routers[0].injected == 1
    assert net.routers[1].forwarded == 1
    assert net.routers[2].ejected == 1
    assert net.routers[1].traversals == 1


def test_link_utilization():
    engine, _, net = build(1, 2)
    send(net, 0, 1)
    engine.run()
    util = net.link_utilization()
    assert util[(0, 1)] > 0
    assert util[(1, 0)] == 0


def test_fifo_ordering_same_path():
    """Two messages on the same src->dst path arrive in send order."""
    engine, _, net = build(1, 4, link_width_bytes=8)
    order = []
    send(net, 0, 3, size=64, on=lambda m: order.append("first"))
    send(net, 0, 3, size=8, on=lambda m: order.append("second"))
    engine.run()
    assert order == ["first", "second"]


def test_link_occupy_semantics():
    link = Link(0, 1)
    end1 = link.occupy(now=10, flits=4, contention=True)
    assert end1 == 14
    end2 = link.occupy(now=10, flits=2, contention=True)
    assert end2 == 16  # waited for the first transfer
    end3 = link.occupy(now=100, flits=1, contention=True)
    assert end3 == 101
    assert link.busy_cycles == 7
