"""Virtual cut-through network model tests."""

import random

import pytest

from repro.common.params import NocConfig
from repro.common.stats import MsgCat, StatsRegistry
from repro.noc.packet import Message
from repro.noc.vct import VCTNetwork
from repro.sim.engine import Engine


def build(rows=2, cols=2, buffer_flits=4, **kw):
    engine = Engine()
    stats = StatsRegistry(rows * cols)
    net = VCTNetwork(engine, stats,
                     NocConfig(rows=rows, cols=cols, model="vct", **kw),
                     buffer_flits=buffer_flits)
    return engine, stats, net


def send(net, src, dst, size=8, on=None, cat=MsgCat.REQUEST):
    msg = Message(src=src, dst=dst, kind="GetS", category=cat,
                  size_bytes=size, on_delivery=on)
    net.send(msg)
    return msg


def test_zero_load_latency_matches_model():
    engine, _, net = build(1, 4)
    got = []
    send(net, 0, 3, on=lambda m: got.append(engine.now))
    engine.run()
    assert got == [net.zero_load_latency(0, 3, 8)]


def test_cut_through_beats_store_and_forward():
    """Multi-flit packets overlap serialization across hops."""
    engine, _, net = build(1, 4, buffer_flits=8, link_width_bytes=8)
    got = []
    send(net, 0, 3, size=32, on=lambda m: got.append(engine.now))  # 4 flits
    engine.run()
    store_and_forward = net.config.router_latency + 3 * (
        4 + net.config.link_latency + net.config.router_latency)
    assert got[0] < store_and_forward


def test_local_delivery():
    engine, stats, net = build()
    got = []
    send(net, 1, 1, on=lambda m: got.append(engine.now))
    engine.run()
    assert got == [net.config.router_latency]
    assert stats.total_messages() == 0


def test_backpressure_stalls_upstream():
    """With tiny buffers, a burst into one link serializes and still
    delivers everything in order."""
    engine, _, net = build(1, 3, buffer_flits=1, link_width_bytes=8)
    order = []
    for k in range(6):
        send(net, 0, 2, size=8,
             on=lambda m, k=k: order.append(k))
    engine.run()
    assert order == list(range(6))
    assert net.in_flight() == 0


def test_conservation_under_random_traffic():
    """Every injected packet is delivered exactly once (no loss, no
    duplication, no deadlock) under random all-to-all traffic."""
    engine, stats, net = build(3, 3, buffer_flits=2)
    rng = random.Random(17)
    delivered = []
    injected = 0
    for t in range(200):
        src = rng.randrange(9)
        dst = rng.randrange(9)
        if src == dst:
            continue
        injected += 1
        engine.schedule_at(
            rng.randrange(100),
            lambda s=src, d=dst: send(net, s, d,
                                      size=rng.choice([8, 72]),
                                      on=lambda m: delivered.append(m)))
    engine.run()
    assert len(delivered) == injected
    assert net.in_flight() == 0
    assert all(m.arrive_time >= m.send_time for m in delivered)


def test_contention_slows_delivery_vs_idle():
    def last_arrival(n_msgs):
        engine, _, net = build(1, 2, buffer_flits=2, link_width_bytes=8)
        times = []
        for _ in range(n_msgs):
            send(net, 0, 1, size=64, on=lambda m: times.append(engine.now))
        engine.run()
        return max(times)

    assert last_arrival(5) > last_arrival(1)


def test_oversize_packet_capped_but_delivered():
    engine, stats, net = build(1, 2, buffer_flits=1, link_width_bytes=8)
    got = []
    send(net, 0, 1, size=64, on=lambda m: got.append(True))  # 8 flits > 1
    engine.run()
    assert got == [True]
    assert stats.counters["vct.oversize_packets"] == 1


def test_accounting_matches_hop_model_semantics():
    engine, stats, net = build(2, 2)
    send(net, 0, 3, size=72, cat=MsgCat.REPLY)
    engine.run()
    assert stats.messages[MsgCat.REPLY] == 1
    assert stats.hop_flits[MsgCat.REPLY] == 2  # 1 flit x 2 hops
    assert net.routers[0].injected == 1
    assert net.routers[3].ejected == 1


def test_chip_runs_on_vct_model():
    from repro import CMP, CMPConfig
    from repro.workloads import Kernel3Workload

    cfg = CMPConfig.for_cores(4)
    cfg = cfg.with_(noc=NocConfig(rows=2, cols=2, model="vct"))
    chip = CMP(cfg, barrier="dsw")
    wl = Kernel3Workload(n=64, iterations=3)
    res = chip.run(wl)
    wl.verify(chip)
    assert res.total_messages() > 0


def test_model_choice_preserves_conclusion():
    """GL beats DSW under either NoC model (robustness ablation)."""
    from repro import CMP, CMPConfig
    from repro.workloads import SyntheticBarrierWorkload

    cycles = {}
    for model in ("hop", "vct"):
        for barrier in ("dsw", "gl"):
            cfg = CMPConfig.for_cores(4)
            cfg = cfg.with_(noc=NocConfig(rows=2, cols=2, model=model))
            chip = CMP(cfg, barrier=barrier)
            res = chip.run(SyntheticBarrierWorkload(iterations=10))
            cycles[(model, barrier)] = res.total_cycles
    assert cycles[("hop", "gl")] < cycles[("hop", "dsw")]
    assert cycles[("vct", "gl")] < cycles[("vct", "dsw")]
    # GL is network-independent: identical cycles under both models.
    assert cycles[("hop", "gl")] == cycles[("vct", "gl")]
