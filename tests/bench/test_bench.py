"""repro.bench harness: cases, timing, snapshots, and the gate logic.

Timing here uses a deliberately tiny case (4 cores, 2 iterations) so the
suite stays fast; the real fig5/6/7 cases are exercised structurally
(spec construction, digests) and at full scale only by
``benchmarks/perf/`` and the CI smoke job.
"""

import json

import pytest

from repro.bench import (CASES, BenchCase, BenchSnapshot, calibrate,
                         compare_snapshots, get_case, load_snapshot,
                         run_case, snapshot_path, write_snapshot)
from repro.bench.runner import BenchError, config_digest
from repro.cli import main
from repro.exec.spec import RunSpec
from repro.workloads import SyntheticBarrierWorkload

TINY = BenchCase(
    name="tiny", description="4-core synthetic point (test only)",
    build=lambda quick: [RunSpec.make(
        SyntheticBarrierWorkload(iterations=1 if quick else 2),
        "gl", num_cores=4)])


# ---------------------------------------------------------------------- #
# Registry and case construction
# ---------------------------------------------------------------------- #
def test_registry_contents():
    assert set(CASES) == {"fig5", "fig6_fig7", "stress16x16",
                          "collectives16x16", "integrity_echo"}
    assert get_case("fig5") is CASES["fig5"]
    with pytest.raises(KeyError):
        get_case("fig9")


@pytest.mark.parametrize("name", sorted(CASES))
def test_cases_build_valid_specs(name):
    case = get_case(name)
    quick, full = case.build(True), case.build(False)
    assert quick and full
    # Quick is genuinely smaller work and hashes differently.
    assert config_digest(case, True) != config_digest(case, False)
    # Building twice is deterministic.
    assert config_digest(case, True) == config_digest(case, True)


def test_fig5_case_mirrors_experiment_grid():
    specs = get_case("fig5").build(False)
    assert len(specs) == 12                   # 3 barriers x 4 chip sizes
    assert {s.barrier for s in specs} == {"csw", "dsw", "gl"}
    assert {s.config.num_cores for s in specs} == {4, 8, 16, 32}


def test_stress_case_is_a_16x16_mesh():
    (spec,) = get_case("stress16x16").build(True)
    assert spec.config.num_cores == 256
    assert (spec.config.noc.rows, spec.config.noc.cols) == (16, 16)


def test_integrity_echo_case_pairs_off_against_echo():
    off, echo = get_case("integrity_echo").build(True)
    assert off.config.collectives.integrity == "off"
    assert echo.config.collectives.integrity == "echo"
    # Same clean workload either side: no fault plan, same chip.
    for spec in (off, echo):
        assert spec.config.num_cores == 64
        assert spec.config.faults.scsma_miscount_rate == 0.0


# ---------------------------------------------------------------------- #
# Timing
# ---------------------------------------------------------------------- #
def test_run_case_measures_both_backends_identically():
    calib = 1_000_000.0          # fixed: no real calibration in tests
    heap = run_case(TINY, "heap", quick=True, repeats=2,
                    calibration_eps=calib)
    batched = run_case(TINY, "batched", quick=True, repeats=2,
                       calibration_eps=calib)
    assert heap.events == batched.events > 0
    assert heap.repeats == len(heap.wall_s) == 2
    assert heap.median_wall_s > 0
    assert heap.events_per_sec == pytest.approx(
        heap.events / heap.median_wall_s)
    assert heap.normalized_score == pytest.approx(
        heap.events_per_sec / calib)


def test_run_case_rejects_bad_repeats():
    with pytest.raises(BenchError):
        run_case(TINY, "heap", repeats=0)


def test_calibrate_returns_plausible_rate():
    eps = calibrate(repeats=1)
    assert 10_000 < eps < 1_000_000_000


# ---------------------------------------------------------------------- #
# Snapshot I/O
# ---------------------------------------------------------------------- #
def _snapshot(score=1.0, events=1000, digest="d" * 16, quick=True,
              backends=("heap", "batched")):
    from repro.bench.runner import BackendMeasurement

    snap = BenchSnapshot(name="tiny", quick=quick, config_digest=digest)
    for backend in backends:
        snap.backends[backend] = BackendMeasurement(
            backend=backend, repeats=2, wall_s=[0.1, 0.1],
            median_wall_s=0.1, events=events,
            events_per_sec=events / 0.1, calibration_eps=events / 0.1,
            normalized_score=score)
    return snap


def test_snapshot_roundtrip(tmp_path):
    snap = _snapshot()
    path = write_snapshot(snap, tmp_path)
    assert path == snapshot_path("tiny", tmp_path)
    assert path.name == "BENCH_tiny.json"
    loaded = load_snapshot("tiny", tmp_path)
    assert loaded.to_dict() == snap.to_dict()
    # File is valid, sorted JSON (committed artifact hygiene).
    text = path.read_text()
    assert text == json.dumps(json.loads(text), indent=2,
                              sort_keys=True) + "\n"


def test_load_snapshot_absent_or_corrupt_returns_none(tmp_path):
    assert load_snapshot("tiny", tmp_path) is None
    snapshot_path("tiny", tmp_path).write_text("{not json")
    assert load_snapshot("tiny", tmp_path) is None


# ---------------------------------------------------------------------- #
# The regression gate
# ---------------------------------------------------------------------- #
def test_compare_ok_within_tolerance():
    comps = compare_snapshots(_snapshot(score=0.9), _snapshot(score=1.0),
                              tolerance=0.25)
    assert [c.backend for c in comps] == ["batched", "heap"]
    assert all(not c.regressed for c in comps)
    assert comps[0].ratio == pytest.approx(0.9)


def test_compare_flags_regression_beyond_tolerance():
    comps = compare_snapshots(_snapshot(score=0.5), _snapshot(score=1.0),
                              tolerance=0.25)
    assert all(c.regressed for c in comps)
    assert "REGRESSED" in comps[0].summary()


def test_compare_improvement_never_regresses():
    comps = compare_snapshots(_snapshot(score=5.0), _snapshot(score=1.0))
    assert all(not c.regressed for c in comps)


def test_compare_without_baseline_is_empty():
    assert compare_snapshots(_snapshot(), None) == []


def test_compare_refuses_different_work():
    with pytest.raises(BenchError):
        compare_snapshots(_snapshot(digest="a" * 16),
                          _snapshot(digest="b" * 16))
    with pytest.raises(BenchError):
        compare_snapshots(_snapshot(quick=True), _snapshot(quick=False))


def test_compare_notes_event_count_drift():
    comps = compare_snapshots(_snapshot(events=999), _snapshot(events=1000))
    assert all("event count changed" in c.note for c in comps)


def test_compare_skips_backends_missing_from_baseline():
    current = _snapshot()
    baseline = _snapshot(backends=("heap",))
    comps = compare_snapshots(current, baseline)
    assert [c.backend for c in comps] == ["heap"]


# ---------------------------------------------------------------------- #
# CLI
# ---------------------------------------------------------------------- #
def test_cli_unknown_case_is_usage_error(capsys):
    assert main(["bench", "fig9"]) == 2
    assert "unknown bench case" in capsys.readouterr().err


def test_cli_bench_runs_writes_and_gates(tmp_path, monkeypatch, capsys):
    import repro.bench.cases as cases_mod
    monkeypatch.setattr(cases_mod, "CASES", {"tiny": TINY})

    # Seed a baseline, then gate a fresh run against it.
    assert main(["bench", "--quick", "--repeats", "1", "--write",
                 "--baseline-dir", str(tmp_path), "tiny"]) == 0
    assert (tmp_path / "BENCH_tiny.json").exists()
    # The tiny case runs in milliseconds, where wall-clock noise dwarfs
    # any tolerance, so both gate outcomes are forced deterministically
    # by editing the baseline's scores: absurdly low -> must pass,
    # absurdly high -> must fail.
    def scale_baseline(factor):
        data = json.loads((tmp_path / "BENCH_tiny.json").read_text())
        for meas in data["backends"].values():
            meas["normalized_score"] *= factor
        (tmp_path / "BENCH_tiny.json").write_text(json.dumps(data))

    scale_baseline(1e-6)
    assert main(["bench", "--quick", "--repeats", "1", "--check",
                 "--baseline-dir", str(tmp_path), "tiny"]) == 0
    out = capsys.readouterr().out
    assert "tiny" in out and "ev/s" in out

    scale_baseline(1e12)
    assert main(["bench", "--quick", "--repeats", "1", "--check",
                 "--baseline-dir", str(tmp_path), "tiny"]) == 1
    # Without --check the regression is reported but not fatal.
    assert main(["bench", "--quick", "--repeats", "1",
                 "--baseline-dir", str(tmp_path), "tiny"]) == 0
    assert "REGRESSED" in capsys.readouterr().out


def test_cli_bench_refuses_stale_baseline_work(tmp_path, monkeypatch,
                                               capsys):
    import repro.bench.cases as cases_mod
    monkeypatch.setattr(cases_mod, "CASES", {"tiny": TINY})
    assert main(["bench", "--quick", "--repeats", "1", "--write",
                 "--baseline-dir", str(tmp_path), "tiny"]) == 0
    # Full-scale run against the quick baseline: different work.
    assert main(["bench", "--repeats", "1",
                 "--baseline-dir", str(tmp_path), "tiny"]) == 2
    assert "different work" in capsys.readouterr().err
