"""Network utilization report tests."""

from helpers import make_chip, run_uniform
from repro.analysis.netreport import (hotspot_table, link_stats,
                                      tile_heatmap, total_flit_hops)
from repro.cpu import isa


def run_traffic(barrier="csw", cores=4):
    chip = make_chip(cores, barrier)
    run_uniform(chip, lambda c: iter([isa.BarrierOp(),
                                      isa.BarrierOp()]))
    return chip


def test_link_stats_sorted_and_consistent():
    chip = run_traffic()
    stats = link_stats(chip.network)
    flits = [f for _n, f, _u in stats]
    assert flits == sorted(flits, reverse=True)
    assert sum(flits) == total_flit_hops(chip.network)
    assert sum(flits) > 0


def test_csw_creates_hotspot_around_home_tile():
    chip = run_traffic("csw")
    stats = link_stats(chip.network)
    # Centralized barrier: traffic concentrates -- the busiest link
    # carries far more than the median link.
    busiest = stats[0][1]
    median = stats[len(stats) // 2][1]
    assert busiest > 2 * max(median, 1)


def test_gl_leaves_mesh_untouched():
    chip = run_traffic("gl")
    assert total_flit_hops(chip.network) == 0
    heat = tile_heatmap(chip.network)
    assert "@" not in heat.splitlines()[1]  # no hot tile row... peak==1


def test_heatmap_shape():
    chip = run_traffic("dsw", cores=8)
    heat = tile_heatmap(chip.network)
    lines = heat.splitlines()
    assert len(lines) == 1 + chip.config.noc.rows + 1
    assert "@" in heat  # some tile is the hottest


def test_hotspot_table_renders():
    chip = run_traffic("dsw")
    table = hotspot_table(chip.network, top=5)
    assert "Utilization" in table
    assert "->" in table
