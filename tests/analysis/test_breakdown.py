"""Breakdown/normalization math tests."""

from repro.analysis.breakdown import (Breakdown, BreakdownComparison,
                                      FIG6_ORDER, average_normalized)
from repro.common.stats import CycleCat


def bd(label, **cycles):
    full = {cat: 0 for cat in CycleCat}
    for key, value in cycles.items():
        full[CycleCat(key)] = value
    return Breakdown(label, full)


def test_total_and_normalization():
    b = bd("DSW", busy=60, barrier=40)
    assert b.total == 100
    norm = b.normalized_to(200)
    assert norm[CycleCat.BUSY] == 0.3
    assert norm[CycleCat.BARRIER] == 0.2


def test_comparison_reduction():
    comp = BreakdownComparison("K", bd("DSW", busy=50, barrier=50),
                               bd("GL", busy=50, barrier=10))
    assert comp.normalized_treated_total == 0.6
    assert abs(comp.time_reduction - 0.4) < 1e-12


def test_rows_follow_fig6_order():
    comp = BreakdownComparison("K", bd("DSW", busy=10),
                               bd("GL", busy=10))
    labels = [r[0] for r in comp.rows()]
    assert labels == [c.value for c in FIG6_ORDER]
    assert labels[0] == "barrier"


def test_average_normalized():
    comps = [
        BreakdownComparison("A", bd("DSW", busy=100), bd("GL", busy=50)),
        BreakdownComparison("B", bd("DSW", busy=100), bd("GL", busy=70)),
    ]
    assert abs(average_normalized(comps) - 0.6) < 1e-12
    assert average_normalized([]) == 0.0


def test_zero_baseline_safe():
    comp = BreakdownComparison("Z", bd("DSW"), bd("GL", busy=5))
    assert comp.normalized_treated_total == 5.0  # degenerate but defined
