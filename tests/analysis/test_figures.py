"""ASCII figure rendering tests."""

from repro.analysis.figures import (fig5_chart, log_chart, stacked_bar,
                                    stacked_bar_chart)


def test_log_chart_places_markers():
    chart = log_chart({"csw": {4: 1000, 8: 10000},
                       "gl": {4: 13, 8: 13}}, title="T")
    assert "T" in chart
    assert "C" in chart and "G" in chart
    # GL's marker row is below CSW's (smaller value = lower on the chart).
    lines = chart.splitlines()
    c_rows = [i for i, l in enumerate(lines) if "C" in l and "|" in l]
    g_rows = [i for i, l in enumerate(lines) if "G" in l and "|" in l
              and "G=gl" not in l]
    assert min(g_rows) > min(c_rows)


def test_log_chart_axis_labels():
    chart = log_chart({"a": {1: 10, 2: 1000}})
    assert "1e1" in chart and "1e3" in chart


def test_log_chart_empty():
    assert log_chart({}, title="empty") == "empty"


def test_stacked_bar_widths():
    bar = stacked_bar([0.5, 0.25], width=40)
    assert bar.count("#") == 20
    assert bar.count("=") == 10


def test_stacked_bar_chart_rows_and_legend():
    out = stacked_bar_chart(
        [("A/DSW", [0.6, 0.4]), ("A/GL", [0.1, 0.2])],
        categories=["barrier", "busy"], title="X")
    assert "A/DSW" in out and "A/GL" in out
    assert "#=barrier" in out
    assert "1.00" in out and "0.30" in out


def test_fig5_chart_from_experiment_shape():
    chart = fig5_chart({"csw": {4: 600, 32: 50000},
                        "dsw": {4: 220, 32: 1200},
                        "gl": {4: 13, 32: 13}})
    assert "Figure 5" in chart
    assert "C=CSW" in chart and "G=GL" in chart
