"""Shape-validation module tests (using synthetic result objects)."""

from repro.analysis.breakdown import Breakdown, BreakdownComparison
from repro.analysis.traffic import Traffic, TrafficComparison
from repro.analysis.validation import (all_passed, check_fig5, check_fig6,
                                       check_fig7, render_checklist,
                                       validate_all)
from repro.common.stats import CycleCat, MsgCat
from repro.experiments.fig5 import Fig5Result
from repro.experiments.fig6 import Fig6Result
from repro.experiments.fig7 import Fig7Result


def fig5(gl=13.0, ordered=True):
    r = Fig5Result(core_counts=(4, 16), impls=("csw", "dsw", "gl"),
                   iterations=1)
    r.cycles_per_barrier = {
        "csw": {4: 600.0, 16: 10_000.0},
        "dsw": {4: 200.0, 16: 700.0},
        "gl": {4: gl, 16: gl},
    }
    if not ordered:
        r.cycles_per_barrier["gl"] = {4: 900.0, 16: 900.0}
    return r


def bd(total):
    cycles = {cat: 0 for cat in CycleCat}
    cycles[CycleCat.BUSY] = total
    return Breakdown("x", cycles)


def fig6(values):
    r = Fig6Result()
    for name, ratio in values.items():
        r.comparisons[name] = BreakdownComparison(
            name, bd(1000), bd(int(1000 * ratio)))
    return r


def tr(total):
    msgs = {MsgCat.REQUEST: total, MsgCat.REPLY: 0, MsgCat.COHERENCE: 0}
    return Traffic("x", msgs, dict(msgs), dict(msgs))


def fig7(values):
    r = Fig7Result()
    for name, ratio in values.items():
        r.comparisons[name] = TrafficComparison(
            name, tr(1000), tr(int(1000 * ratio)))
    return r


GOOD_FIG6 = {"KERN2": 0.33, "KERN3": 0.18, "KERN6": 0.70,
             "UNSTR": 0.97, "OCEAN": 0.98, "EM3D": 0.42}
GOOD_FIG7 = {"KERN2": 0.21, "KERN3": 0.02, "KERN6": 0.28,
             "UNSTR": 0.93, "OCEAN": 0.97, "EM3D": 0.53}


def test_good_results_pass_everything():
    checks = validate_all(fig5(), fig6(GOOD_FIG6), fig7(GOOD_FIG7))
    assert all_passed(checks), render_checklist(checks)
    assert len(checks) >= 12


def test_bad_fig5_ordering_fails():
    checks = check_fig5(fig5(ordered=False))
    assert not all_passed(checks)


def test_wrong_gl_latency_fails():
    checks = check_fig5(fig5(gl=40.0))
    failing = [c for c in checks if not c.passed]
    assert any("13" in c.name for c in failing)


def test_fig6_wrong_kernel_ordering_fails():
    values = dict(GOOD_FIG6)
    values["KERN3"] = 0.9  # worse than KERN2: wrong shape
    checks = check_fig6(fig6(values))
    assert not all_passed(checks)


def test_fig7_kern3_not_vanishing_fails():
    values = dict(GOOD_FIG7)
    values["KERN3"] = 0.5
    checks = check_fig7(fig7(values))
    assert not all_passed(checks)


def test_render_checklist_counts():
    checks = validate_all(fig5())
    text = render_checklist(checks)
    assert "shape checks passed" in text
    assert text.count("PASS") == sum(c.passed for c in checks)
