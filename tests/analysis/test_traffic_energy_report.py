"""Traffic, energy and report-rendering tests."""

from repro.analysis.energy import (EnergyEstimate, LINK_ENERGY,
                                   ROUTER_ENERGY, estimate, reduction)
from repro.analysis.report import pct, render_bar, render_table
from repro.analysis.traffic import (FIG7_ORDER, Traffic, TrafficComparison,
                                    average_normalized)
from repro.common.stats import MsgCat, StatsRegistry
from repro.chip.results import RunResult


def tr(label, coherence=0, reply=0, request=0):
    msgs = {MsgCat.COHERENCE: coherence, MsgCat.REPLY: reply,
            MsgCat.REQUEST: request}
    return Traffic(label, msgs, dict(msgs), dict(msgs))


# ---------------------------------------------------------------------- #
def test_traffic_totals_and_norm():
    t = tr("DSW", coherence=30, reply=20, request=50)
    assert t.total == 100
    norm = t.normalized_to(200)
    assert norm[MsgCat.REQUEST] == 0.25


def test_traffic_comparison():
    comp = TrafficComparison("K", tr("DSW", request=100),
                             tr("GL", request=25))
    assert comp.normalized_treated_total == 0.25
    assert comp.traffic_reduction == 0.75
    labels = [r[0] for r in comp.rows()]
    assert labels == [c.value for c in FIG7_ORDER]


def test_traffic_average():
    comps = [TrafficComparison("A", tr("D", request=10), tr("G", request=5)),
             TrafficComparison("B", tr("D", request=10), tr("G", request=1))]
    assert abs(average_normalized(comps) - 0.3) < 1e-12


# ---------------------------------------------------------------------- #
def make_result_with_traffic():
    stats = StatsRegistry(2)
    stats.add_message(MsgCat.REQUEST, flits=1, hops=2)
    stats.add_message(MsgCat.REPLY, flits=1, hops=2)
    stats.gline_toggles = 10
    return RunResult(total_cycles=100, barrier_name="GL", num_cores=2,
                     stats=stats, events_executed=1)


def test_energy_estimate_components():
    res = make_result_with_traffic()
    e = estimate("GL", res)
    assert e.link_energy == 4 * LINK_ENERGY     # 2 msgs x 1 flit x 2 hops
    assert e.router_energy == 4 * ROUTER_ENERGY
    assert e.gline_energy == 10
    assert e.total == e.data_network + 10


def test_energy_reduction():
    a = EnergyEstimate("DSW", 100, 300, 0)
    b = EnergyEstimate("GL", 10, 30, 20)
    assert abs(reduction(a, b) - (1 - 60 / 400)) < 1e-12
    assert reduction(EnergyEstimate("z", 0, 0, 0), b) == 0.0


# ---------------------------------------------------------------------- #
def test_render_table_alignment():
    out = render_table(["A", "Benchmark"], [[1, "x"], [22, "yy"]],
                       title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "Benchmark" in lines[2]
    assert len({len(l) for l in lines[2:]} ) <= 2  # aligned columns


def test_render_table_number_formats():
    out = render_table(["v"], [[1234567], [0.123], [0.0012]])
    assert "1,234,567" in out
    assert "0.12" in out
    assert "0.0012" in out


def test_render_bar_and_pct():
    assert render_bar(0.5, width=10) == "#####"
    assert render_bar(0.0) == ""
    assert pct(0.683) == "68.3%"
