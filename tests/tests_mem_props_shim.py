"""Shared quiescent-consistency checker (used by stress + property tests)."""

from repro.mem.cache import MESI
from repro.mem.directory import DirState


def check_quiescent_consistency(chip) -> None:
    """SWMR + directory/L1 agreement over every line anyone touched."""
    lines = set()
    for tile in chip.tiles:
        lines.update(tile.l1.array.resident_lines())
        lines.update(tile.home.entries)
    for line in lines:
        states = {t: tile.l1.array.probe(line)
                  for t, tile in enumerate(chip.tiles)}
        valid = {t for t, s in states.items() if s is not MESI.I}
        exclusive = {t for t, s in states.items() if s.exclusive}
        if exclusive:
            assert len(exclusive) == 1, f"two exclusive copies of {line:#x}"
            assert valid == exclusive, \
                f"exclusive + shared copies of {line:#x}"
        home = chip.tiles[chip.amap.home_of(line)].home
        state, sharers, owner = home.dir_state(line)
        if state is DirState.EM:
            assert valid in ({owner}, set()), \
                f"dir EM owner {owner} but valid={valid} for {line:#x}"
        elif state is DirState.S:
            assert valid <= sharers, \
                f"valid copies {valid} not all in sharers {sharers}"
        else:
            assert not valid, f"dir I but valid copies {valid}"
