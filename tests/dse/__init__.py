"""Tests for the repro.dse design-space-exploration subsystem."""
