"""SweepScheduler: cache/journal integration, pools, retries, chaos,
and the dse.* metric accounting identity."""

import pytest

from repro.dse import SPACES, SweepScheduler, WorkerPool
from repro.exec import ResultCache, RunFailureError, SweepJournal
from repro.faults.chaos import ChaosPlan


def _specs(n=4, fidelity=1):
    space = SPACES["smoke"]
    points = [p for p in space.points()][:n]
    return [space.build_spec(p, fidelity) for p in points]


class ExplodingSpec:
    """A picklable spec whose execution always raises (sim-error)."""

    def key(self):
        return "boom" + "0" * 60

    def fingerprint(self):
        return {"boom": True}

    def execute(self):
        raise ValueError("deterministic failure")


def _attempt_identity(metrics):
    att = metrics.counter("dse.attempts").value
    outcomes = sum(metrics.counter(f"dse.{k}").value
                   for k in ("ok", "crashes", "timeouts", "sim_errors"))
    assert att == outcomes, "dse.* metrics must account for every attempt"


def test_results_are_positional_and_cached(tmp_path):
    cache = ResultCache(tmp_path)
    specs = _specs(3)
    sched = SweepScheduler(jobs=2, cache=cache)
    results = sched.run(specs)
    assert len(results) == 3
    for spec, result in zip(specs, results):
        assert result.total_cycles > 0
        assert spec.key() in cache
    assert (sched.hits, sched.misses) == (0, 3)
    _attempt_identity(sched.metrics)

    warm = SweepScheduler(jobs=2, cache=cache)
    again = warm.run(specs)
    assert (warm.hits, warm.misses) == (3, 0)
    assert warm.metrics.counter("dse.attempts").value == 0
    assert [r.to_dict() for r in again] == \
        [r.to_dict() for r in results]


def test_scheduler_matches_direct_execution(tmp_path):
    spec = _specs(1)[0]
    [result] = SweepScheduler(jobs=1, cache=ResultCache(tmp_path)) \
        .run([spec])
    assert result.to_dict() == spec.execute().to_dict()


def test_multiple_pools_share_the_batch(tmp_path):
    pools = (WorkerPool("a", 1), WorkerPool("b", 1))
    sched = SweepScheduler(pools, cache=ResultCache(tmp_path))
    sched.run(_specs(4))
    a = sched.metrics.counter("dse.pool.a.launched").value
    b = sched.metrics.counter("dse.pool.b.launched").value
    assert a == b == 2          # round-robin assignment
    _attempt_identity(sched.metrics)


def test_pool_validation():
    with pytest.raises(ValueError):
        WorkerPool("", 1)
    with pytest.raises(ValueError):
        WorkerPool("p", 0)
    with pytest.raises(ValueError):
        SweepScheduler((WorkerPool("p", 1), WorkerPool("p", 2)))
    with pytest.raises(ValueError):
        SweepScheduler((WorkerPool("p", 1),), jobs=2)
    with pytest.raises(ValueError):
        SweepScheduler(jobs=1, retries=-1)


def test_sim_error_fails_fast_without_retries(tmp_path):
    sched = SweepScheduler(jobs=1, cache=ResultCache(tmp_path),
                           keep_going=True)
    results = sched.run([ExplodingSpec()])
    assert results == [None]
    assert len(sched.failures) == 1
    assert sched.failures[0].kind == "sim-error"
    assert sched.metrics.counter("dse.retries").value == 0
    _attempt_identity(sched.metrics)


def test_failures_raise_without_keep_going(tmp_path):
    sched = SweepScheduler(jobs=1, cache=ResultCache(tmp_path))
    with pytest.raises(RunFailureError):
        sched.run([ExplodingSpec()])


def test_keep_going_mixes_failures_and_results(tmp_path):
    good = _specs(1)
    sched = SweepScheduler(jobs=2, cache=ResultCache(tmp_path),
                           keep_going=True)
    results = sched.run([ExplodingSpec()] + good)
    assert results[0] is None
    assert results[1].total_cycles > 0
    assert [f.index for f in sched.failures] == [0]


def test_chaos_kill_is_retried_and_journal_consistent(tmp_path):
    """The acceptance-criteria chaos run: a seeded killed worker is
    retried, results match a calm run, and the journal is consistent."""
    specs = _specs(4)
    calm = SweepScheduler(jobs=2, cache=ResultCache(tmp_path / "calm"))
    expected = [r.to_dict() for r in calm.run(specs)]

    journal_path = tmp_path / "sweep.jsonl"
    journal = SweepJournal(journal_path, argv=["dse", "--test"])
    sched = SweepScheduler(
        jobs=2, cache=ResultCache(tmp_path / "chaos"), journal=journal,
        chaos=ChaosPlan(seed=0, kill_rate=0.3), retries=6)
    results = sched.run(specs)
    journal.close()

    assert [r.to_dict() for r in results] == expected
    metrics = sched.metrics
    assert metrics.counter("dse.crashes").value > 0
    assert metrics.counter("dse.retries").value == \
        metrics.counter("dse.crashes").value
    assert metrics.counter("dse.quarantined").value == 0
    _attempt_identity(metrics)

    records = SweepJournal.records(journal_path)
    kinds = [r["type"] for r in records]
    assert kinds[0] == "begin"
    assert "crash" in [r.get("outcome") for r in records
                       if r["type"] == "attempt"]
    done = SweepJournal.completed_keys(journal_path)
    assert done == {spec.key() for spec in specs}


def test_exhausted_retries_quarantine(tmp_path):
    specs = _specs(1)
    journal = SweepJournal(tmp_path / "j.jsonl", argv=["x"])
    sched = SweepScheduler(
        jobs=1, cache=ResultCache(tmp_path), journal=journal,
        chaos=ChaosPlan(seed=0, kill_rate=1.0), retries=1,
        keep_going=True)
    results = sched.run(specs)
    journal.close()
    assert results == [None]
    assert sched.failures[0].kind == "quarantined"
    assert sched.failures[0].attempts == 2
    assert sched.metrics.counter("dse.quarantined").value == 1
    records = SweepJournal.records(tmp_path / "j.jsonl")
    assert [r["type"] for r in records].count("quarantined") == 1
    _attempt_identity(sched.metrics)


def test_journal_hits_recorded_for_cache_hits(tmp_path):
    cache = ResultCache(tmp_path)
    specs = _specs(2)
    SweepScheduler(jobs=1, cache=cache).run(specs)
    journal = SweepJournal(tmp_path / "j.jsonl", argv=["x"])
    warm = SweepScheduler(jobs=1, cache=cache, journal=journal)
    warm.run(specs)
    journal.close()
    records = SweepJournal.records(tmp_path / "j.jsonl")
    assert [r["type"] for r in records].count("hit") == 2
