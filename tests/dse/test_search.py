"""run_search: determinism, budget accounting, warm-rerun behavior,
failure tolerance and front exports."""

from pathlib import Path

import pytest

from repro.dse import (SPACES, Axis, DseSpace, SearchError,
                       SweepScheduler, front_csv, front_json,
                       pareto_front, run_search)
from repro.exec import ResultCache

SMOKE = SPACES["smoke"]


def _search(scheduler=None, **kwargs):
    kwargs.setdefault("budget", 8)
    kwargs.setdefault("seed", 3)
    kwargs.setdefault("rungs", (1, 2))
    return run_search(SMOKE, scheduler=scheduler, **kwargs)


def test_search_is_deterministic_per_seed():
    a, b = _search(), _search()
    assert front_json(a) == front_json(b)
    assert front_json(a) != front_json(_search(seed=4))


def test_budget_counts_evaluation_requests():
    result = _search(budget=5)
    assert result.evaluations == 5
    assert result.rounds >= 1


def test_front_points_are_mutually_nondominated():
    result = _search(budget=12)
    assert result.front
    vectors = [tuple(fp.objectives[n] for n in result.objectives)
               for fp in result.front]
    assert pareto_front(vectors) == list(range(len(vectors)))
    for fp in result.front:
        assert fp.fidelity == result.rungs[-1]
        assert set(fp.point) == {a.name for a in SMOKE.axes}


def test_warm_rerun_is_identical_with_zero_simulation(tmp_path):
    cold_sched = SweepScheduler(jobs=2, cache=ResultCache(tmp_path),
                                keep_going=True)
    cold = _search(scheduler=cold_sched)
    warm_sched = SweepScheduler(jobs=2, cache=ResultCache(tmp_path),
                                keep_going=True)
    warm = _search(scheduler=warm_sched)
    assert front_json(cold) == front_json(warm)
    assert warm_sched.misses == 0
    assert warm.evaluations == cold.evaluations


def test_runtime_infeasible_points_are_dropped():
    # An unhardened G-line barrier under stuck-at faults deadlocks:
    # the point costs budget, fails as a sim-error, and never reaches
    # the front.
    space = DseSpace(
        "faulty",
        (Axis("mesh", ("4x4",)),
         Axis("barrier", ("gl",)),
         Axis("watchdog_budget", (0,)),
         Axis("stuck_rate", (0.01,))))
    result = run_search(space, budget=4, seed=1, rungs=(2,))
    assert result.failed >= 1
    assert result.front == []


def test_search_validates_inputs():
    with pytest.raises(SearchError):
        _search(objectives=("no-such-objective",))
    with pytest.raises(SearchError):
        _search(objectives=())
    with pytest.raises(SearchError):
        _search(rungs=(4, 2))
    with pytest.raises(SearchError):
        _search(budget=0)


def test_front_exports():
    result = _search(budget=10)
    js = front_json(result)
    assert js.endswith("\n")
    assert front_json(result) == js           # stable
    csv_text = front_csv(result)
    header, *rows = csv_text.strip().splitlines()
    axes = sorted(a.name for a in SMOKE.axes)
    assert header.split(",")[:len(axes)] == axes
    assert header.split(",")[len(axes):] == list(result.objectives)
    assert len(rows) == len(result.front)


def test_smoke_search_matches_committed_golden_front():
    """The CI dse-smoke settings reproduce results/dse_front.json.

    A drift means the simulator, the search trajectory or the space
    changed -- update the golden deliberately (the command is in
    .github/workflows/ci.yml).
    """
    golden = (Path(__file__).resolve().parents[2] / "results" /
              "dse_front.json")
    result = run_search(SMOKE, budget=12, seed=7, rungs=(2, 4))
    assert front_json(result) == golden.read_text()


def test_failover_objective_is_selectable():
    result = run_search(SMOKE, objectives=("latency", "failover"),
                        budget=4, seed=2, rungs=(1,))
    for fp in result.front:
        assert fp.objectives["failover"] == 0.0   # fault-free space
