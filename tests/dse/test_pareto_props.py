"""Hypothesis properties of the Pareto utilities (an ISSUE 10
satellite): dominance is a strict partial order, the front is minimal
and complete, and front computation is permutation-invariant."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dse import dominates, nondominated_sort, pareto_front

DIM = 3

finite = st.floats(min_value=-1e6, max_value=1e6,
                   allow_nan=False, allow_infinity=False)
vector = st.tuples(*([finite] * DIM))
vectors = st.lists(vector, min_size=1, max_size=24)


@given(vector)
def test_dominance_is_irreflexive(v):
    assert not dominates(v, v)


@given(vector, vector)
def test_dominance_is_asymmetric(a, b):
    assert not (dominates(a, b) and dominates(b, a))


@given(vector, vector, vector)
def test_dominance_is_transitive(a, b, c):
    if dominates(a, b) and dominates(b, c):
        assert dominates(a, c)


@settings(max_examples=200)
@given(vectors)
def test_front_is_minimal_and_complete(vs):
    front = pareto_front(vs)
    members = set(front)
    assert front, "a nonempty input always has a nonempty front"
    # Minimal: no front member dominates another front member.
    for i in front:
        for j in front:
            assert not dominates(vs[i], vs[j])
    # Complete: every non-member is dominated by some front member.
    for i in range(len(vs)):
        if i not in members:
            assert any(dominates(vs[j], vs[i]) for j in front)


@settings(max_examples=200)
@given(vectors, st.randoms(use_true_random=False))
def test_front_is_permutation_invariant(vs, rng):
    perm = list(range(len(vs)))
    rng.shuffle(perm)
    shuffled = [vs[i] for i in perm]
    original = sorted(tuple(vs[i]) for i in pareto_front(vs))
    permuted = sorted(tuple(shuffled[i])
                      for i in pareto_front(shuffled))
    assert original == permuted


@settings(max_examples=100)
@given(vectors)
def test_nondominated_sort_partitions_and_orders(vs):
    ranks = nondominated_sort(vs)
    flat = sorted(i for rank in ranks for i in rank)
    assert flat == list(range(len(vs)))
    assert ranks[0] == pareto_front(vs)
    # No member of an earlier rank is dominated by a later-rank vector.
    for r, rank in enumerate(ranks):
        for later in ranks[r + 1:]:
            for i in rank:
                assert not any(dominates(vs[j], vs[i]) for j in later)
