"""Unit tests for the dominance / Pareto-front utilities."""

import pytest

from repro.dse import (crowded_order, dominates, nondominated_sort,
                       pareto_front)


def test_dominates_requires_strict_improvement():
    assert dominates((1.0, 2.0), (2.0, 2.0))
    assert dominates((1.0, 1.0), (2.0, 2.0))
    assert not dominates((1.0, 2.0), (1.0, 2.0))      # equal
    assert not dominates((1.0, 3.0), (2.0, 2.0))      # trade-off
    assert not dominates((2.0, 2.0), (1.0, 2.0))


def test_dominates_rejects_dimension_mismatch():
    with pytest.raises(ValueError):
        dominates((1.0,), (1.0, 2.0))


def test_pareto_front_simple():
    vectors = [(1.0, 4.0), (2.0, 2.0), (4.0, 1.0),
               (3.0, 3.0), (5.0, 5.0)]
    assert pareto_front(vectors) == [0, 1, 2]


def test_pareto_front_keeps_duplicate_optima():
    vectors = [(1.0, 1.0), (1.0, 1.0), (2.0, 2.0)]
    assert pareto_front(vectors) == [0, 1]


def test_pareto_front_empty():
    assert pareto_front([]) == []


def test_nondominated_sort_partitions_all_indices():
    vectors = [(1.0, 4.0), (2.0, 2.0), (4.0, 1.0),
               (3.0, 3.0), (5.0, 5.0)]
    ranks = nondominated_sort(vectors)
    assert ranks[0] == [0, 1, 2]
    assert sorted(i for rank in ranks for i in rank) == \
        list(range(len(vectors)))
    assert ranks[-1] == [4]


def test_crowded_order_ranks_front_first_then_by_score():
    vectors = [(5.0, 5.0), (1.0, 4.0), (2.0, 2.0), (4.0, 1.0)]
    order = crowded_order(vectors)
    # The three front members precede the dominated point, and the
    # balanced point (2,2) has the smallest normalized sum.
    assert order[-1] == 0
    assert order[0] == 2
    assert sorted(order) == [0, 1, 2, 3]


def test_crowded_order_is_deterministic_on_ties():
    vectors = [(1.0, 1.0)] * 4
    assert crowded_order(vectors) == [0, 1, 2, 3]
    assert crowded_order([]) == []
