"""DseSpace: axis validation, sampling, mutation, spec building and
serialization -- including the ISSUE 10 satellite that CollectiveConfig
flows through the axes into the exec cache key."""

import json
import random

import pytest

from repro.common.errors import ConfigError
from repro.dse import AXES, SPACES, Axis, DseSpace, SpaceError, \
    space_from_arg


def test_presets_are_well_formed():
    for name, space in SPACES.items():
        assert space.name == name
        assert space.size >= 2
        points = list(space.points())
        assert len(points) == space.size


def test_default_preset_spans_required_axes():
    # The acceptance criteria name a >= 4-axis space covering mesh,
    # watchdog budget, barrier variant and collectives/integrity mode.
    names = {a.name for a in SPACES["default"].axes}
    assert {"mesh", "watchdog_budget", "barrier",
            "collectives"} <= names
    assert len(names) >= 4


def test_axis_validation():
    with pytest.raises(SpaceError):
        Axis("no-such-axis", (1,))
    with pytest.raises(SpaceError):
        Axis("barrier", ())
    with pytest.raises(SpaceError):
        Axis("barrier", ("gl", "gl"))
    with pytest.raises(SpaceError):
        Axis("barrier", ("token-ring",))
    with pytest.raises(SpaceError):
        Axis("mesh", ("4by4",))
    with pytest.raises(SpaceError):
        Axis("watchdog_budget", (-1,))


def test_space_rejects_duplicate_axes():
    with pytest.raises(SpaceError):
        DseSpace("dup", (Axis("barrier", ("gl",)),
                         Axis("barrier", ("csw",))))


def test_sample_is_deterministic_distinct_and_feasible():
    space = SPACES["default"]
    a = space.sample(random.Random(5), 6)
    b = space.sample(random.Random(5), 6)
    assert a == b
    keys = {space.point_key(p) for p in a}
    assert len(keys) == len(a) == 6
    assert all(space.feasible(p) for p in a)


def test_sample_exhausts_small_spaces():
    space = DseSpace("tiny", (Axis("barrier", ("gl", "dsw")),))
    points = space.sample(random.Random(0), 10)
    assert len(points) == 2


def test_mutate_changes_exactly_one_axis():
    space = SPACES["default"]
    rng = random.Random(9)
    point = space.sample(rng, 1)[0]
    mutated = space.mutate(rng, point)
    assert mutated is not None
    diff = [k for k in point if point[k] != mutated[k]]
    assert len(diff) == 1
    assert space.feasible(mutated)


def test_recovery_requires_watchdog_point_is_infeasible():
    space = DseSpace("r", (Axis("watchdog_budget", (0, 64)),
                           Axis("recovery", ("on",))))
    assert not space.feasible({"watchdog_budget": 0, "recovery": "on"})
    assert space.feasible({"watchdog_budget": 64, "recovery": "on"})
    # sample() never returns the infeasible combination.
    points = space.sample(random.Random(0), 4)
    assert points == [{"watchdog_budget": 64, "recovery": "on"}]


def test_build_spec_wires_the_axes_through():
    space = SPACES["default"]
    point = {"mesh": "2x8", "topology": "fit", "watchdog_budget": 64,
             "barrier": "dsw", "collectives": "gl-echo"}
    spec = space.build_spec(point, fidelity=3)
    cfg = spec.config
    assert (cfg.noc.rows, cfg.noc.cols) == (2, 8)
    assert cfg.num_cores == 16
    assert cfg.gline.max_transmitters == 7        # fit: max(2,8)-1
    assert cfg.gline.watchdog_budget == 64
    assert spec.barrier == "dsw"
    assert cfg.collectives.enabled
    assert cfg.collectives.backend == "gl"
    assert cfg.collectives.integrity == "echo"
    assert spec.workload.iterations == 3


def test_topology_axis_differentiates_wide_meshes():
    space = SPACES["default"]
    base = {"mesh": "2x8", "watchdog_budget": 0, "barrier": "gl",
            "collectives": "off"}
    fit = space.build_spec({**base, "topology": "fit"}, 1)
    hier = space.build_spec({**base, "topology": "hier"}, 1)
    assert fit.config.gline.max_transmitters == 7
    assert hier.config.gline.max_transmitters == 6
    assert fit.key() != hier.key()


def test_collectives_axis_reaches_the_exec_cache_key():
    """The PR 8 leftover: CollectiveConfig (backend + integrity mode)
    must serialize through the DSE axes into the cache key."""
    space = SPACES["smoke"]
    base = {"mesh": "4x4", "watchdog_budget": 0, "barrier": "gl"}
    keys = {}
    for fabric in ("off", "gl", "gl-echo"):
        spec = space.build_spec({**base, "collectives": fabric}, 2)
        keys[fabric] = spec.key()
        fp = spec.fingerprint()
        assert fp["config"]["collectives"]["enabled"] == \
            (fabric != "off")
    assert len(set(keys.values())) == 3
    echo = space.build_spec({**base, "collectives": "gl-echo"}, 2)
    assert echo.config.collectives.integrity == "echo"
    # Round trip through the serialized fingerprint preserves the mode.
    from repro.common.params import CMPConfig
    rebuilt = CMPConfig.from_dict(echo.fingerprint()["config"])
    assert rebuilt.collectives == echo.config.collectives


def test_stuck_rate_axis_builds_a_fault_plan():
    space = SPACES["resilience"]
    point = {"mesh": "4x4", "watchdog_budget": 64, "stuck_rate": 0.002,
             "recovery": "off", "failover": "csw"}
    spec = space.build_spec(point, 1)
    assert spec.config.faults.gline_stuck_rate == 0.002
    clean = space.build_spec({**point, "stuck_rate": 0.0}, 1)
    assert clean.config.faults.gline_stuck_rate == 0.0
    assert spec.key() != clean.key()


def test_build_spec_rejects_mismatched_points():
    space = SPACES["smoke"]
    with pytest.raises(SpaceError):
        space.build_spec({"mesh": "4x4"}, 1)
    with pytest.raises(SpaceError):
        point = {"mesh": "4x4", "watchdog_budget": 5,  # not on axis
                 "barrier": "gl", "collectives": "off"}
        space.build_spec(point, 1)
    with pytest.raises(SpaceError):
        point = {"mesh": "4x4", "watchdog_budget": 0,
                 "barrier": "gl", "collectives": "off"}
        space.build_spec(point, 0)


def test_space_serialization_round_trip(tmp_path):
    space = SPACES["default"]
    rebuilt = DseSpace.from_dict(space.to_dict())
    assert rebuilt == space
    path = tmp_path / "space.json"
    path.write_text(json.dumps(space.to_dict()))
    assert space_from_arg(str(path)) == space


def test_space_from_arg_resolves_presets_and_errors():
    assert space_from_arg("smoke") is SPACES["smoke"]
    with pytest.raises(SpaceError):
        space_from_arg("no-such-space")


def test_point_key_is_order_insensitive():
    a = {"barrier": "gl", "mesh": "4x4"}
    b = {"mesh": "4x4", "barrier": "gl"}
    assert DseSpace.point_key(a) == DseSpace.point_key(b)


def test_axes_registry_descriptions():
    for name, axis_def in AXES.items():
        assert axis_def.name == name
        assert axis_def.description
