"""The ``repro dse`` subcommand end to end (in-process via main())."""

import json

from repro.cli import main

SMOKE_ARGS = ["dse", "--space", "smoke", "--budget", "6", "--seed", "3",
              "--rungs", "1", "2", "--jobs", "2"]


def _run(argv, capsys):
    rc = main(argv)
    captured = capsys.readouterr()
    return rc, captured.out, captured.err


def test_dse_smoke_runs_and_exports(tmp_path, capsys):
    out_dir = tmp_path / "out"
    rc, out, err = _run(
        SMOKE_ARGS + ["--cache-dir", str(tmp_path / "cache"),
                      "--out", str(out_dir)], capsys)
    assert rc == 0
    assert "Pareto front: space=smoke" in out
    front = json.loads((out_dir / "dse_front.json").read_text())
    assert front["space"] == "smoke"
    assert front["evaluations"] == 6
    assert front["front"]
    assert (out_dir / "dse_front.csv").read_text().splitlines()[0] \
        .endswith("latency,energy,wires")
    assert (out_dir / "dse.txt").exists()
    assert "6 simulated" in err


def test_dse_warm_rerun_reproduces_stdout_with_zero_simulation(
        tmp_path, capsys):
    args = SMOKE_ARGS + ["--cache-dir", str(tmp_path)]
    rc1, out1, _ = _run(args, capsys)
    rc2, out2, err2 = _run(args, capsys)
    assert (rc1, rc2) == (0, 0)
    assert out1 == out2
    assert "(100%), 0 simulated" in err2


def test_dse_resume_flag_reports_completed_runs(tmp_path, capsys):
    journal = tmp_path / "dse.jsonl"
    args = SMOKE_ARGS + ["--cache-dir", str(tmp_path / "cache")]
    rc, _, _ = _run(args + ["--journal", str(journal)], capsys)
    assert rc == 0
    rc, out, err = _run(args + ["--resume", str(journal)], capsys)
    assert rc == 0
    assert "resuming from" in err
    assert "run(s) already completed" in err
    assert "(100%), 0 simulated" in err


def test_dse_journal_replays_through_repro_resume(tmp_path, capsys):
    journal = tmp_path / "dse.jsonl"
    args = SMOKE_ARGS + ["--cache-dir", str(tmp_path / "cache"),
                         "--journal", str(journal)]
    rc, out1, _ = _run(args, capsys)
    assert rc == 0
    rc, out2, err = _run(["resume", str(journal)], capsys)
    assert rc == 0
    assert "resuming: repro dse" in err
    assert out1 == out2
    assert "(100%), 0 simulated" in err


def test_dse_metrics_snapshot(tmp_path, capsys):
    metrics = tmp_path / "metrics.json"
    rc, _, _ = _run(SMOKE_ARGS + ["--cache-dir", str(tmp_path / "c"),
                                  "--metrics", str(metrics)], capsys)
    assert rc == 0
    snapshot = json.loads(metrics.read_text())
    assert snapshot["counters"]["dse.attempts"] == 6
    assert snapshot["counters"]["dse.ok"] == 6


def test_dse_rejects_unknown_space_and_objectives(tmp_path, capsys):
    rc, _, err = _run(["dse", "--space", "no-such-space",
                       "--cache-dir", str(tmp_path)], capsys)
    assert rc == 2
    assert "unknown space" in err
    rc, _, err = _run(SMOKE_ARGS + ["--cache-dir", str(tmp_path),
                                    "--objectives", "bogus"], capsys)
    assert rc == 2
    assert "bogus" in err


def test_dse_pools_flag(tmp_path, capsys):
    rc, _, err = _run(
        SMOKE_ARGS[:-2] + ["--pools", "fast:2,slow:1",
                           "--cache-dir", str(tmp_path)], capsys)
    assert rc == 0
    assert "pools=fast:2+slow:1" in err
    rc, _, err = _run(["dse", "--pools", "broken",
                       "--cache-dir", str(tmp_path)], capsys)
    assert rc == 2


def test_dse_crossover_small(tmp_path, capsys):
    rc, out, _ = _run(
        ["dse", "--crossover", "--core-counts", "16", "--budget", "6",
         "--seed", "3", "--rungs", "1", "2", "--jobs", "2",
         "--cache-dir", str(tmp_path)], capsys)
    assert rc == 0
    assert "crossover headline:" in out
    assert "16 cores:" in out
