"""FaultInjector: deterministic, per-domain-independent fault streams."""

from repro.common.stats import StatsRegistry
from repro.faults import FaultInjector, FaultPlan
from repro.gline.gline import GLine


def _injector(**plan_kw):
    return FaultInjector(FaultPlan(**plan_kw), StatsRegistry(1))


def _noc_stream(inj, n=300):
    return [inj.noc_outcome() for _ in range(n)]


def test_same_plan_same_stream():
    a = _injector(seed=5, noc_drop_rate=0.1, noc_corrupt_rate=0.05)
    b = _injector(seed=5, noc_drop_rate=0.1, noc_corrupt_rate=0.05)
    assert _noc_stream(a) == _noc_stream(b)


def test_different_seed_different_stream():
    a = _injector(seed=5, noc_drop_rate=0.1)
    b = _injector(seed=6, noc_drop_rate=0.1)
    assert _noc_stream(a) != _noc_stream(b)


def test_domains_are_independent():
    """Enabling a G-line fault category must not shift the NoC stream."""
    noc_only = _injector(seed=9, noc_drop_rate=0.1)
    both = _injector(seed=9, noc_drop_rate=0.1, gline_glitch_rate=0.2)
    line = GLine("g")
    line.attach("a")
    both.perturb_glines([line])        # consume G-line randomness first
    assert _noc_stream(noc_only) == _noc_stream(both)


def test_per_core_straggler_streams_differ():
    inj = _injector(seed=1, core_straggler_rate=0.5,
                    straggler_max_cycles=100)
    s0 = [inj.core_straggler_delay(0) for _ in range(50)]
    inj2 = _injector(seed=1, core_straggler_rate=0.5,
                     straggler_max_cycles=100)
    s1 = [inj2.core_straggler_delay(1) for _ in range(50)]
    assert s0 != s1
    assert all(0 <= d <= 100 for d in s0 + s1)
    assert any(d > 0 for d in s0)


def test_stuck_onset_is_permanent_and_counted_once():
    inj = _injector(seed=1, gline_stuck_rate=0.999)
    line = GLine("g")
    line.attach("a")
    inj.perturb_glines([line])
    assert line.stuck in (0, 1)
    assert inj.stats.counters["faults.gline.stuck"] == 1
    inj.perturb_glines([line])         # already stuck: skipped entirely
    assert inj.stats.counters["faults.gline.stuck"] == 1


def test_stuck_line_dominates_its_level():
    inj = _injector(seed=1, gline_stuck_rate=0.999)
    line = GLine("g")
    line.attach("a")
    inj.perturb_glines([line])
    if line.stuck == 0:
        line.assert_signal("a")
        assert line.sample_count() == 0 and not line.sampled_on()
    else:
        assert line.sample_count() == line.num_attached
        assert line.sampled_on()


def test_glitch_inverts_apparent_level_for_one_cycle():
    inj = _injector(seed=1, gline_glitch_rate=0.999)
    line = GLine("g")
    line.attach("a")
    inj.perturb_glines([line])         # idle line glitches high
    assert line.sampled_on()
    assert inj.stats.counters["faults.gline.glitches"] == 1
    line.end_cycle()
    assert not line.sampled_on()       # glitch does not persist


def test_miscount_is_clamped_to_physical_range():
    inj = _injector(seed=1, scsma_miscount_rate=0.999)
    line = GLine("g")
    line.attach("a")
    for _ in range(30):
        inj.perturb_glines([line])
        assert 0 <= line.sample_count() <= line.num_attached
        line.end_cycle()
    assert inj.stats.counters["faults.gline.miscounts"] > 0
