"""NoC packet faults and core straggler / fail-stop faults."""

from dataclasses import replace

import pytest

from repro import CMP, CMPConfig
from repro.common.errors import DeadlockError
from repro.faults import FaultPlan
from repro.workloads.synthetic import SyntheticBarrierWorkload


def _run(plan, barrier="csw", cores=4, iterations=5):
    chip = CMP(CMPConfig.for_cores(cores).with_(faults=plan),
               barrier=barrier)
    result = chip.run(SyntheticBarrierWorkload(iterations=iterations))
    return chip, result


def test_noc_drops_slow_but_complete_a_software_barrier():
    clean_chip, clean = _run(FaultPlan())
    chip, result = _run(FaultPlan(seed=2, noc_drop_rate=0.05))
    assert chip.stats.counters["faults.noc.dropped"] > 0
    assert result.num_barriers() == clean.num_barriers()
    # Retransmission penalties cost real cycles.
    assert result.total_cycles > clean.total_cycles
    # A disabled plan builds no injector at all.
    assert clean_chip.injector is None


def test_noc_corruption_is_detected_and_retransmitted():
    chip, result = _run(FaultPlan(seed=2, noc_corrupt_rate=0.08))
    assert chip.stats.counters["faults.noc.corrupted"] > 0
    assert result.num_barriers() == 20


def test_noc_faults_are_deterministic():
    def one(seed):
        chip, result = _run(FaultPlan(seed=seed, noc_drop_rate=0.05,
                                      noc_corrupt_rate=0.05))
        return (result.total_cycles,
                chip.stats.counters["faults.noc.dropped"],
                chip.stats.counters["faults.noc.corrupted"])

    assert one(7) == one(7)
    assert one(7) != one(8)


def test_noc_faults_apply_under_vct_model_too():
    cfg = CMPConfig.for_cores(4)
    cfg = cfg.with_(noc=replace(cfg.noc, model="vct"),
                    faults=FaultPlan(seed=2, noc_drop_rate=0.05))
    chip = CMP(cfg, barrier="csw")
    result = chip.run(SyntheticBarrierWorkload(iterations=5))
    assert chip.stats.counters["faults.noc.dropped"] > 0
    assert result.num_barriers() == 20


def test_stragglers_delay_but_complete_the_barrier():
    clean_chip, clean = _run(FaultPlan(), barrier="gl")
    chip, result = _run(FaultPlan(seed=4, core_straggler_rate=0.3,
                                  straggler_max_cycles=100),
                        barrier="gl")
    assert chip.stats.counters["faults.core.stragglers"] > 0
    assert result.num_barriers() == clean.num_barriers()
    assert result.total_cycles > clean.total_cycles


def test_failstop_deadlock_is_enriched():
    """Satellite (c): a fail-stopped core is unrecoverable by design; the
    DeadlockError must say when it happened and what everyone was doing."""
    with pytest.raises(DeadlockError) as exc:
        _run(FaultPlan(seed=1, core_failstop_rate=0.5), barrier="gl")
    msg = str(exc.value)
    assert "deadlocked at cycle" in msg
    assert "[fail-stopped]" in msg
    assert "BarrierOp" in msg              # the halted cores' pending op
    assert exc.value.blocked_cores         # machine-readable core list
