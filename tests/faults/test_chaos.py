"""ChaosPlan: seeded worker-failure schedules."""

import pytest

from repro.common.errors import ConfigError
from repro.faults import ChaosPlan
from repro.faults.chaos import CHAOS_ENV, HANG, KILL, OOM


def test_default_plan_is_disabled_and_never_strikes():
    plan = ChaosPlan()
    assert not plan.enabled
    assert all(plan.roll(str(t), a) is None
               for t in range(20) for a in range(3))


def test_rolls_are_deterministic_and_seed_sensitive():
    a = ChaosPlan(seed=0, kill_rate=0.25)
    b = ChaosPlan(seed=0, kill_rate=0.25)
    c = ChaosPlan(seed=1, kill_rate=0.25)
    rolls = [a.roll(str(t), 0) for t in range(64)]
    assert rolls == [b.roll(str(t), 0) for t in range(64)]
    assert rolls != [c.roll(str(t), 0) for t in range(64)]
    # Retries draw independently: a struck token is not struck forever.
    struck = [t for t in range(64) if rolls[t] == KILL]
    assert struck, "kill_rate=0.25 over 64 tokens must strike some"
    assert any(a.roll(str(t), 1) is None for t in struck)


def test_rates_partition_the_unit_interval():
    plan = ChaosPlan(seed=7, kill_rate=0.3, hang_rate=0.3, oom_rate=0.3)
    rolls = [plan.roll(str(t), 0) for t in range(400)]
    counts = {k: rolls.count(k) for k in (KILL, HANG, OOM, None)}
    for kind in (KILL, HANG, OOM):
        assert 60 <= counts[kind] <= 180, counts  # ~120 each
    assert counts[None] > 0


def test_rate_one_always_strikes():
    plan = ChaosPlan(seed=3, kill_rate=1.0)
    assert all(plan.roll(str(t), a) == KILL
               for t in range(8) for a in range(4))


@pytest.mark.parametrize("kwargs", [
    {"kill_rate": -0.1},
    {"hang_rate": 1.5},
    {"kill_rate": 0.6, "hang_rate": 0.6},      # sum > 1
    {"hang_seconds": 0.0},
])
def test_invalid_plans_are_rejected(kwargs):
    with pytest.raises(ConfigError):
        ChaosPlan(**kwargs)


def test_dict_round_trip():
    plan = ChaosPlan(seed=9, kill_rate=0.1, hang_rate=0.2,
                     hang_seconds=5.0)
    assert ChaosPlan.from_dict(plan.to_dict()) == plan
    with pytest.raises(ConfigError, match="unknown"):
        ChaosPlan.from_dict({"bogus": 1})


def test_from_env_parses_aliases_and_defaults():
    env = {CHAOS_ENV: "seed=3,kill=0.25,hang=0.1,oom=0.05"}
    plan = ChaosPlan.from_env(env)
    assert plan == ChaosPlan(seed=3, kill_rate=0.25, hang_rate=0.1,
                             oom_rate=0.05)
    assert ChaosPlan.from_env({}) is None
    assert ChaosPlan.from_env({CHAOS_ENV: "  "}) is None


@pytest.mark.parametrize("raw", [
    "kill",                    # no '='
    "frobnicate=1",            # unknown key
    "kill=banana",             # bad value
    "kill=2.0",                # out of range (plan validation)
])
def test_from_env_rejects_garbage(raw):
    with pytest.raises(ConfigError):
        ChaosPlan.from_env({CHAOS_ENV: raw})
