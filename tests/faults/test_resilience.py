"""The resilience sweep driver (experiments/resilience.py)."""

from repro.exec import ParallelRunner, ResultCache, use_executor
from repro.experiments import run_resilience

SWEEP = dict(rates=(0.0, 0.05), num_cores=4, iterations=4, seed=1)


def test_sweep_rows_and_table():
    result = run_resilience(**SWEEP)
    clean, faulty = result.rows

    # Rate 0 is a plain hardened run: nothing injected, nothing detected.
    assert clean["rate"] == 0.0
    assert clean["stuck"] == 0
    assert (clean["detections"], clean["retries"], clean["failovers"]) \
        == (0, 0, 0)
    assert clean["sw_arrivals"] == 0

    # The aggressive rate wedges a wire and the run survives in software.
    assert faulty["stuck"] >= 1
    assert faulty["failovers"] >= 1
    assert faulty["sw_arrivals"] > 0
    assert faulty["cycles_per_barrier"] > clean["cycles_per_barrier"]
    assert 0 < result.failover_rate(0.05) <= 1

    table = result.table()
    assert "Stuck rate" in table
    assert "completed via software failover: yes" in table


def test_sweep_is_deterministic():
    assert run_resilience(**SWEEP).table() == run_resilience(**SWEEP).table()


def test_sweep_reproducible_through_exec_cache(tmp_path):
    runner = ParallelRunner(jobs=1, cache=ResultCache(tmp_path))
    with use_executor(runner):
        cold = run_resilience(**SWEEP)
        warm = run_resilience(**SWEEP)
    assert runner.hits == len(SWEEP["rates"])
    assert runner.misses == len(SWEEP["rates"])
    assert cold.table() == warm.table()
    # And a cached faulty run equals a recomputed one.
    assert cold.table() == run_resilience(**SWEEP).table()
