"""Intermittent G-line faults: seeded bursts that assert and heal.

The intermittent class sits between a one-cycle glitch and a permanent
stuck-at: a burst begins at a seeded onset, forces the line's level (at
the plan's duty cycle) for a bounded window, then heals.  Everything is
deterministic per (plan, seed), and the class rides its own RNG domain
so enabling it never shifts the stuck/glitch/miscount schedules.
"""

from repro.common.stats import StatsRegistry
from repro.faults import FaultInjector, FaultPlan
from repro.gline.gline import GLine


def _injector(stats=None, **plan_kw):
    plan_kw.setdefault("gline_intermittent_rate", 0.05)
    plan_kw.setdefault("gline_intermittent_min_cycles", 5)
    plan_kw.setdefault("gline_intermittent_max_cycles", 20)
    return FaultInjector(FaultPlan(**plan_kw),
                         stats if stats is not None else StatsRegistry(1))


def _trace(inj, line, cycles=600):
    """(cycle, forced_level) pairs for every cycle the fault asserts."""
    out = []
    for now in range(cycles):
        inj.perturb_glines([line], now=now)
        if line.glitch_force is not None:
            out.append((now, line.glitch_force))
        line.end_cycle()
    return out


def _line():
    line = GLine("glnet.SglineH0")
    line.attach("a")
    return line


def test_bursts_are_deterministic_per_seed():
    a = _trace(_injector(seed=7), _line())
    b = _trace(_injector(seed=7), _line())
    c = _trace(_injector(seed=8), _line())
    assert a and a == b
    assert a != c


def test_bursts_heal_within_the_window_bounds():
    stats = StatsRegistry(1)
    trace = _trace(_injector(stats, seed=3), _line())
    onsets = stats.counters["faults.gline.intermittent_onsets"]
    heals = stats.counters["faults.gline.intermittent_heals"]
    assert onsets >= 2
    # Every burst that started early enough healed; at most one can
    # still be open at the end of the trace.
    assert onsets - heals <= 1
    # Asserting cycles come in runs no longer than the max window.
    runs, start = [], trace[0][0]
    for (c0, _), (c1, _) in zip(trace, trace[1:]):
        if c1 != c0 + 1:
            runs.append(c0 - start + 1)
            start = c1
    assert runs and all(r <= 20 for r in runs)


def test_duty_cycle_thins_burst_assertion():
    solid = _trace(_injector(seed=11, gline_intermittent_duty=1.0),
                   _line())
    thin = _trace(_injector(seed=11, gline_intermittent_duty=0.3),
                  _line())
    assert 0 < len(thin) < len(solid)


def test_polarity_pin_forces_every_burst_low():
    pinned = _trace(_injector(seed=2, gline_intermittent_polarity=0),
                    _line(), cycles=3000)
    assert pinned and all(level == 0 for _, level in pinned)
    free = _trace(_injector(seed=2), _line(), cycles=3000)
    assert {level for _, level in free} == {0, 1}


def test_polarity_pin_does_not_shift_the_schedule():
    """The polarity coin is drawn even when pinned, so pinning changes
    *levels* only -- onsets and durations stay on the same cycles."""
    free = _trace(_injector(seed=4), _line())
    pinned = _trace(_injector(seed=4, gline_intermittent_polarity=1),
                    _line())
    assert [c for c, _ in free] == [c for c, _ in pinned]


def test_legacy_call_without_now_disables_intermittent():
    """perturb_glines(lines) with no cycle stays byte-identical to the
    pre-intermittent injector -- burst windows need wall-clock time."""
    inj = _injector(seed=1)
    line = _line()
    for _ in range(200):
        inj.perturb_glines([line])
        assert line.glitch_force is None and line.stuck is None
        line.end_cycle()
    assert "faults.gline.intermittent_onsets" not in inj.stats.counters


def test_stuck_line_wins_over_intermittent():
    inj = _injector(seed=6)
    line = _line()
    line.stuck = 1
    for now in range(300):
        inj.perturb_glines([line], now=now)
        assert line.glitch_force is None
        line.end_cycle()
    assert "faults.gline.intermittent_onsets" not in inj.stats.counters
