"""Seeded recovery golden: byte-identical across engine backends.

The acceptance criterion for the self-healing fabric: the same
``FaultPlan`` + seed produces the *same* failover post-mortems and the
*same* recovery event sequence (the controller's bounded log) whether
the chip runs on the heap reference engine or the batched calendar
kernel.  Every entry embeds absolute cycle numbers, so this is a strict
whole-timeline comparison, not just a counter check.
"""

from repro.chip.cmp import CMP
from repro.experiments.resilience import recovery_config
from repro.workloads.synthetic import SyntheticBarrierWorkload


def _run(backend: str, duty: float, seed: int):
    cfg = recovery_config(16, duty, seed).with_(sim_backend=backend)
    chip = CMP(cfg, barrier="gl")
    chip.run(SyntheticBarrierWorkload(iterations=12))
    net = chip.barrier_impl.networks[0]
    rec = net.recovery
    return {
        "failover_reports": list(net.failover_reports),
        "reports_dropped": net.failover_reports_dropped,
        "recovery_log": list(rec.log),
        "log_dropped": rec.log_dropped,
        "state": rec.state,
        "flaps": rec.flaps,
        "counters": sorted(
            (k, v) for k, v in chip.stats.counters.items()
            if k.startswith("faults.")),
        "cycles": chip.engine.now,
    }


def test_recovery_timeline_is_byte_identical_across_backends():
    for duty, seed in ((0.5, 1), (1.0, 2)):
        heap = _run("heap", duty, seed)
        batched = _run("batched", duty, seed)
        assert heap == batched, f"duty={duty} seed={seed}"
        # The run must actually exercise the machinery being compared.
        assert heap["failover_reports"] and heap["recovery_log"]


def test_recovery_timeline_is_seed_stable():
    """Re-running the same plan reproduces the timeline verbatim, and a
    different seed takes a genuinely different fault schedule."""
    a = _run("heap", 0.5, 1)
    b = _run("heap", 0.5, 1)
    c = _run("heap", 0.5, 3)
    assert a == b
    assert a["recovery_log"] != c["recovery_log"]
