"""Watchdog, bounded retry and GL -> software failover."""

from dataclasses import replace

import pytest

from helpers import make_chip
from repro import CMP, CMPConfig
from repro.common.params import GLineConfig
from repro.common.stats import StatsRegistry
from repro.faults import FAILOVER, FaultPlan
from repro.gline.hierarchical import HierarchicalGLineBarrier
from repro.gline.network import GLineBarrierNetwork
from repro.gline.timemux import build_time_multiplexed
from repro.sim.engine import Engine
from repro.workloads.synthetic import SyntheticBarrierWorkload

HARDENED = dict(watchdog_budget=32, watchdog_retries=2)


def build(rows, cols, **cfg):
    engine = Engine()
    stats = StatsRegistry(rows * cols)
    net = GLineBarrierNetwork(engine, stats, rows, cols,
                              GLineConfig(**{**HARDENED, **cfg}))
    return engine, stats, net


def arrive_all(engine, net, times=None):
    """Arrive every core; returns ``{cid: resume-args}`` -- ``()`` for a
    normal hardware release, ``(FAILOVER,)`` for a failover bounce."""
    outcomes = {}
    # Absolute times; default "now" so repeated rounds work after armed
    # watchdog timers have advanced the clock.
    times = times or [engine.now] * net.num_cores
    for cid, t in enumerate(times):
        engine.schedule_at(t, lambda c=cid: net.arrive(
            c, lambda *a, c=c: outcomes.__setitem__(c, a)))
    engine.run()
    return outcomes


# ---------------------------------------------------------------------- #
# Fault-free hardened runs must stay clean (watchdog never fires)
# ---------------------------------------------------------------------- #
def test_fault_free_hardened_run_is_clean():
    engine, _, net = build(2, 2)
    outcomes = arrive_all(engine, net)
    assert all(outcomes[c] == () for c in range(4))
    assert (net.detections, net.retries, net.failovers) == (0, 0, 0)
    assert not net.quarantined
    assert net.barriers_completed == 1


def test_fault_free_hardened_back_to_back_barriers():
    engine, _, net = build(3, 3)
    for _ in range(5):
        outcomes = arrive_all(engine, net)
        assert all(a == () for a in outcomes.values())
    assert net.barriers_completed == 5
    assert (net.detections, net.retries, net.failovers) == (0, 0, 0)


def test_fault_free_hierarchical_under_watchdog():
    # Satellite (d): the >7x7 hierarchical composition, hardened.
    engine = Engine()
    stats = StatsRegistry(64)
    net = HierarchicalGLineBarrier(engine, stats, 8, 8,
                                   GLineConfig(**HARDENED))
    outcomes = arrive_all(engine, net)
    assert all(outcomes[c] == () for c in range(64))
    assert (net.detections, net.retries, net.failovers) == (0, 0, 0)
    assert not net.quarantined
    assert net.barriers_completed == 1


def test_fault_free_timemux_under_watchdog():
    # Satellite (d): time-multiplexed slot contexts, hardened.  The slot
    # period stretches every stage, so give the watchdog headroom.
    engine = Engine()
    stats = StatsRegistry(4)
    ctxs = build_time_multiplexed(engine, stats, 2, 2,
                                  GLineConfig(watchdog_budget=64,
                                              watchdog_retries=2),
                                  num_slots=2)
    for ctx in ctxs:
        outcomes = arrive_all(engine, ctx)
        assert all(outcomes[c] == () for c in range(4))
        assert (ctx.detections, ctx.retries, ctx.failovers) == (0, 0, 0)
        assert not ctx.quarantined


# ---------------------------------------------------------------------- #
# Stuck-at faults: detect, retry, fail over
# ---------------------------------------------------------------------- #
def test_stuck_at_zero_gather_line_fails_over():
    """A gather line stuck low stalls the count; the watchdog retries the
    configured number of times, then quarantines the network."""
    engine, stats, net = build(2, 2)
    net.row_tx[1].stuck = 0
    outcomes = arrive_all(engine, net)
    assert all(outcomes[c] == (FAILOVER,) for c in range(4))
    assert net.quarantined
    assert (net.detections, net.retries, net.failovers) == (3, 2, 1)
    assert stats.counters["faults.watchdog.detections"] == 3
    assert stats.counters["faults.watchdog.retries"] == 2
    assert stats.counters["faults.watchdog.failovers"] == 1


def test_stuck_at_one_gather_line_is_overshoot_detected():
    """Stuck high overcounts the S-CSMA read-out; hardened masters treat
    count > num_slaves as a fault instead of releasing early."""
    engine, _, net = build(2, 2)
    net.row_tx[0].stuck = 1
    outcomes = arrive_all(engine, net)
    assert all(outcomes[c] == (FAILOVER,) for c in range(4))
    assert net.failovers == 1


def test_stuck_at_one_release_line_is_guarded():
    """A release line going high without its master driving it would
    release cores early; the guard masks it and flags the episode."""
    engine, stats, net = build(2, 2)
    net.row_rel[1].stuck = 1
    outcomes = arrive_all(engine, net)
    assert all(outcomes[c] == (FAILOVER,) for c in range(4))
    assert stats.counters["faults.gline.spurious_releases"] >= 1
    assert net.quarantined


def test_transient_fault_healed_by_retry():
    """A stall that clears before the watchdog's retry completes in
    hardware.  Note the retry is *required* even though the wire healed:
    the slave's one-shot arrival signal was swallowed by the dead wire,
    and only the retry's FSM reset makes it re-signal."""
    engine, _, net = build(2, 2)
    net.row_tx[1].stuck = 0
    # All arrived at t=1, watchdog fires at t=33; the "wire" heals before
    # that, so the first retry's re-gather goes through.
    engine.schedule_at(10, lambda: setattr(net.row_tx[1], "stuck", None))
    outcomes = arrive_all(engine, net)
    assert all(outcomes[c] == () for c in range(4))
    assert net.detections == 1
    assert net.retries == 1
    assert net.failovers == 0
    assert not net.quarantined
    assert net.barriers_completed == 1


def test_completed_episode_leaves_stale_timer_silent():
    """The armed watchdog event always outlives a successful episode; its
    token must be stale by then, so it expires without a detection."""
    engine, _, net = build(2, 2)
    outcomes = arrive_all(engine, net)
    assert all(a == () for a in outcomes.values())
    # The heap drained *through* the armed timer event (it fired well
    # after the ~6-cycle episode) and found its token stale.
    assert engine.now >= 33
    assert net.detections == 0


def test_quarantined_network_bounces_new_arrivals():
    engine, _, net = build(2, 2)
    net.row_tx[1].stuck = 0
    arrive_all(engine, net)
    assert net.quarantined
    late = {}
    net.arrive(0, lambda *a: late.setdefault(0, a))
    engine.run()
    assert late[0] == (FAILOVER,)


def test_episode_watchdog_catches_missing_cores():
    """With the optional first-arrival budget, an episode whose cores
    never all show up fails over directly (retries cannot help)."""
    engine, _, net = build(2, 2, watchdog_episode_budget=50)
    outcomes = {}
    for cid in range(3):                       # core 3 never arrives
        net.arrive(cid, lambda *a, c=cid: outcomes.__setitem__(c, a))
    engine.run()
    assert all(outcomes[c] == (FAILOVER,) for c in range(3))
    assert net.quarantined
    assert net.retries == 0                    # skipped straight past them
    assert net.failovers == 1


# ---------------------------------------------------------------------- #
# Chip-level acceptance: stuck wire, run completes via software failover
# ---------------------------------------------------------------------- #
def test_stuck_gline_chip_run_completes_via_failover():
    cfg = CMPConfig.for_cores(16)
    cfg = cfg.with_(gline=replace(cfg.gline, watchdog_budget=64,
                                  watchdog_retries=2))
    chip = CMP(cfg, barrier="gl")
    net = chip.barrier_impl.networks[0]
    net.lines[0].stuck = 0                     # row-0 gather line, dead
    result = chip.run(SyntheticBarrierWorkload(iterations=10))

    counters = chip.stats.counters
    assert counters["faults.watchdog.detections"] == 3
    assert counters["faults.watchdog.retries"] == 2
    assert counters["faults.watchdog.failovers"] == 1
    # Every one of the 40 episodes x 16 cores completed over software.
    assert counters["faults.failover.sw_arrivals"] == 640
    assert result.num_barriers() == 40
    assert net.quarantined


def test_failover_to_dsw_fallback():
    cfg = CMPConfig.for_cores(4)
    cfg = cfg.with_(gline=replace(cfg.gline, watchdog_budget=64,
                                  failover_barrier="dsw"))
    chip = CMP(cfg, barrier="gl")
    assert "DSW" in chip.barrier_impl.describe()
    chip.barrier_impl.networks[0].lines[0].stuck = 0
    result = chip.run(SyntheticBarrierWorkload(iterations=2))
    assert chip.stats.counters["faults.watchdog.failovers"] == 1
    assert result.num_barriers() == 8


def test_unhardened_gl_barrier_has_no_fallback():
    chip = make_chip(4, "gl")
    assert chip.barrier_impl.fallback is None
    assert chip.barrier_impl.networks[0].hardened is False


def test_watchdog_with_injected_stuck_faults_end_to_end():
    """Acceptance: a seeded FaultPlan (not a hand-placed fault) produces
    stuck wires and the run still completes, deterministically."""
    def one_run():
        cfg = CMPConfig.for_cores(16)
        cfg = cfg.with_(
            gline=replace(cfg.gline, watchdog_budget=64,
                          watchdog_retries=2),
            faults=FaultPlan(seed=3, gline_stuck_rate=0.01))
        chip = CMP(cfg, barrier="gl")
        result = chip.run(SyntheticBarrierWorkload(iterations=10))
        c = chip.stats.counters
        return (result.total_cycles,
                c.get("faults.gline.stuck", 0),
                c.get("faults.watchdog.failovers", 0),
                c.get("faults.failover.sw_arrivals", 0))

    first = one_run()
    assert first[1] >= 1                       # faults actually injected
    assert first[3] >= 1                       # and software finished them
    assert first == one_run()                  # seeded => reproducible
