"""FaultPlan: validation, serialization and cache-key integration."""

import pytest

from repro.common.errors import ConfigError
from repro.common.params import CMPConfig
from repro.exec import RunSpec
from repro.faults import FaultPlan
from repro.workloads.synthetic import SyntheticBarrierWorkload


def test_default_plan_is_disabled():
    plan = FaultPlan()
    assert not plan.enabled
    assert plan.gline_stuck_rate == 0.0
    assert plan.noc_drop_rate == 0.0
    assert plan.core_failstop_rate == 0.0


@pytest.mark.parametrize("field", [
    "gline_stuck_rate", "gline_glitch_rate", "scsma_miscount_rate",
    "noc_drop_rate", "noc_corrupt_rate", "core_straggler_rate",
    "core_failstop_rate"])
def test_any_nonzero_rate_enables(field):
    assert FaultPlan(**{field: 0.01}).enabled


@pytest.mark.parametrize("bad", [
    {"gline_stuck_rate": -0.1},
    {"gline_stuck_rate": 1.0},
    {"core_failstop_rate": 2.0},
    {"noc_drop_rate": 0.6, "noc_corrupt_rate": 0.5},
    {"noc_retry_cycles": 0},
    {"straggler_max_cycles": 0},
])
def test_invalid_plans_rejected(bad):
    with pytest.raises(ConfigError):
        FaultPlan(**bad)


def test_round_trip_is_identity():
    plan = FaultPlan(seed=7, gline_stuck_rate=0.001, noc_drop_rate=0.02,
                     noc_retry_cycles=33, core_straggler_rate=0.1,
                     straggler_max_cycles=55)
    assert FaultPlan.from_dict(plan.to_dict()) == plan


def test_from_dict_rejects_unknown_fields():
    with pytest.raises(ConfigError, match="unknown"):
        FaultPlan.from_dict({"seed": 1, "gamma_ray_rate": 0.5})


def test_cmp_config_carries_the_plan():
    plan = FaultPlan(seed=3, noc_drop_rate=0.1)
    cfg = CMPConfig.for_cores(4).with_(faults=plan)
    data = cfg.to_dict()
    assert data["faults"]["noc_drop_rate"] == 0.1
    assert CMPConfig.from_dict(data).faults == plan


def test_config_from_dict_without_faults_defaults_disabled():
    # Pre-fault-subsystem serialized configs must still load.
    data = CMPConfig.for_cores(4).to_dict()
    del data["faults"]
    assert CMPConfig.from_dict(data).faults == FaultPlan()


def test_plan_changes_the_exec_cache_key():
    wl = SyntheticBarrierWorkload(iterations=2)
    base = RunSpec.make(wl, "gl", num_cores=4,
                        config=CMPConfig.for_cores(4))
    faulty = RunSpec.make(wl, "gl", num_cores=4,
                          config=CMPConfig.for_cores(4).with_(
                              faults=FaultPlan(seed=1,
                                               gline_stuck_rate=0.001)))
    reseeded = RunSpec.make(wl, "gl", num_cores=4,
                            config=CMPConfig.for_cores(4).with_(
                                faults=FaultPlan(seed=2,
                                                 gline_stuck_rate=0.001)))
    assert base.key() != faulty.key()
    assert faulty.key() != reseeded.key()
