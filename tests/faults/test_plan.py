"""FaultPlan: validation, serialization and cache-key integration."""

import pytest

from repro.common.errors import ConfigError
from repro.common.params import CMPConfig
from repro.exec import RunSpec
from repro.faults import FaultPlan
from repro.workloads.synthetic import SyntheticBarrierWorkload


def test_default_plan_is_disabled():
    plan = FaultPlan()
    assert not plan.enabled
    assert plan.gline_stuck_rate == 0.0
    assert plan.noc_drop_rate == 0.0
    assert plan.core_failstop_rate == 0.0


@pytest.mark.parametrize("field", [
    "gline_stuck_rate", "gline_glitch_rate", "scsma_miscount_rate",
    "noc_drop_rate", "noc_corrupt_rate", "core_straggler_rate",
    "core_failstop_rate"])
def test_any_nonzero_rate_enables(field):
    assert FaultPlan(**{field: 0.01}).enabled


@pytest.mark.parametrize("bad", [
    {"gline_stuck_rate": -0.1},
    {"gline_stuck_rate": 1.0},
    {"core_failstop_rate": 2.0},
    {"noc_drop_rate": 0.6, "noc_corrupt_rate": 0.5},
    {"noc_retry_cycles": 0},
    {"straggler_max_cycles": 0},
])
def test_invalid_plans_rejected(bad):
    with pytest.raises(ConfigError):
        FaultPlan(**bad)


def test_round_trip_is_identity():
    plan = FaultPlan(seed=7, gline_stuck_rate=0.001, noc_drop_rate=0.02,
                     noc_retry_cycles=33, core_straggler_rate=0.1,
                     straggler_max_cycles=55)
    assert FaultPlan.from_dict(plan.to_dict()) == plan


def test_from_dict_rejects_unknown_fields():
    with pytest.raises(ConfigError, match="unknown"):
        FaultPlan.from_dict({"seed": 1, "gamma_ray_rate": 0.5})


def test_cmp_config_carries_the_plan():
    plan = FaultPlan(seed=3, noc_drop_rate=0.1)
    cfg = CMPConfig.for_cores(4).with_(faults=plan)
    data = cfg.to_dict()
    assert data["faults"]["noc_drop_rate"] == 0.1
    assert CMPConfig.from_dict(data).faults == plan


def test_config_from_dict_without_faults_defaults_disabled():
    # Pre-fault-subsystem serialized configs must still load.
    data = CMPConfig.for_cores(4).to_dict()
    del data["faults"]
    assert CMPConfig.from_dict(data).faults == FaultPlan()


def test_plan_changes_the_exec_cache_key():
    wl = SyntheticBarrierWorkload(iterations=2)
    base = RunSpec.make(wl, "gl", num_cores=4,
                        config=CMPConfig.for_cores(4))
    faulty = RunSpec.make(wl, "gl", num_cores=4,
                          config=CMPConfig.for_cores(4).with_(
                              faults=FaultPlan(seed=1,
                                               gline_stuck_rate=0.001)))
    reseeded = RunSpec.make(wl, "gl", num_cores=4,
                            config=CMPConfig.for_cores(4).with_(
                                faults=FaultPlan(seed=2,
                                                 gline_stuck_rate=0.001)))
    assert base.key() != faulty.key()
    assert faulty.key() != reseeded.key()


# ---------------------------------------------------------------------- #
# Miscount sign bias (scsma_miscount_bias)
# ---------------------------------------------------------------------- #
def _miscount_deltas(bias, cycles=4000, rate=0.5, seed=11):
    from repro.common.stats import StatsRegistry
    from repro.faults.injector import FaultInjector
    from repro.gline.gline import GLine

    plan = FaultPlan(seed=seed, scsma_miscount_rate=rate,
                     scsma_miscount_bias=bias)
    inj = FaultInjector(plan, StatsRegistry(4))
    line = GLine("biastest.tx", 6)
    out = []
    for _ in range(cycles):
        inj.perturb_glines([line])
        out.append(line.count_delta)
        line.end_cycle()
    return out


def test_bias_validation():
    FaultPlan(scsma_miscount_bias=-1.0)
    FaultPlan(scsma_miscount_bias=1.0)
    with pytest.raises(ConfigError, match="scsma_miscount_bias"):
        FaultPlan(scsma_miscount_bias=1.5)
    with pytest.raises(ConfigError, match="scsma_miscount_bias"):
        FaultPlan(scsma_miscount_bias=-2.0)


def test_bias_skews_the_sign_distribution():
    deltas = [d for d in _miscount_deltas(0.0) if d]
    plus = sum(1 for d in deltas if d > 0) / len(deltas)
    assert 0.4 < plus < 0.6
    assert all(d == -1 for d in _miscount_deltas(-1.0) if d)
    assert all(d == 1 for d in _miscount_deltas(1.0) if d)


def test_bias_does_not_shift_onset_cycles():
    # Sweeping the bias changes only the sign stream: the set of cycles
    # on which a miscount fires is pinned by the line's main stream.
    onsets = [
        [i for i, d in enumerate(_miscount_deltas(b)) if d]
        for b in (0.0, -1.0, 0.7)]
    assert onsets[0] == onsets[1] == onsets[2]


def test_bias_zero_is_byte_stable_with_legacy_plans():
    # Field absent at default: serialized legacy plans and their cache
    # keys are unchanged.
    plan = FaultPlan(seed=5, scsma_miscount_rate=0.01)
    assert "scsma_miscount_bias" not in plan.to_dict()
    assert FaultPlan.from_dict(plan.to_dict()) == plan
    biased = FaultPlan(seed=5, scsma_miscount_rate=0.01,
                       scsma_miscount_bias=-0.5)
    assert biased.to_dict()["scsma_miscount_bias"] == -0.5
    assert FaultPlan.from_dict(biased.to_dict()) == biased
