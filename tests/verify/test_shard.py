"""Sharded exploration over the parallel experiment executor.

Verify shards are ordinary executor specs: they fan out over
:class:`ParallelRunner` workers, land in the persistent
:class:`ResultCache`, and decode back through the spec's
``result_from_dict`` hook (not ``RunResult``).  The merged census must
reach the same verdicts as the single-process exploration.
"""

import pytest

from repro.exec import ParallelRunner, ResultCache
from repro.verify import (GLBarrierModel, PROVED, VerifyShardResult,
                          VerifyShardSpec, explore, merge_shards,
                          replay_actions, shard_prefixes)


def _specs(model, depth, **kw):
    prefixes, early = shard_prefixes(model, depth)
    assert early is None
    return [VerifyShardSpec(rows=model.rows, cols=model.cols,
                            prefix=p, **kw) for p in prefixes]


def test_shard_prefixes_are_deterministic_and_rooted():
    model = GLBarrierModel(2, 4)
    a, _ = shard_prefixes(model, 2)
    b, _ = shard_prefixes(model, 2)
    assert a == b == sorted(a)
    assert len(a) == len(set(a)) > 1


def test_shallow_violation_surfaces_during_prefix_walk():
    model = GLBarrierModel(2, 2, mutation="mh-early-flag")
    prefixes, early = shard_prefixes(model, 6)
    assert prefixes == [] and early is not None
    assert early.prop == "safety"


def test_merged_census_matches_single_process_verdicts():
    model = GLBarrierModel(2, 4)
    single = explore(model)
    results = [spec.execute() for spec in _specs(model, 2)]
    merged = merge_shards(results, model)
    assert merged.ok
    # Shards overlap where subtrees reconverge: summed counts upper-
    # bound the single-process census but never undercount it.
    assert merged.states >= single.states
    assert merged.transitions >= single.transitions
    assert all(v == PROVED for v in merged.properties.values())
    assert merged.max_completion_ticks == single.max_completion_ticks


def test_shard_violation_carries_full_path():
    model = GLBarrierModel(2, 2, mutation="mv-early-done")
    specs = _specs(model, 1, mutation="mv-early-done")
    results = [spec.execute() for spec in specs]
    merged = merge_shards(results, model)
    assert merged.violation is not None
    # The prefix + local path replays from the *initial* state to the
    # same violation.
    _, _, violation = replay_actions(model,
                                     merged.violation.action_indices)
    assert violation is not None
    assert violation.prop == merged.violation.prop


def test_specs_run_and_cache_over_the_executor(tmp_path):
    model = GLBarrierModel(2, 2)
    specs = _specs(model, 1)
    cache = ResultCache(tmp_path)
    runner = ParallelRunner(jobs=2, cache=cache)
    cold = runner.run(specs)
    assert runner.misses == len(specs) and runner.hits == 0
    assert all(isinstance(r, VerifyShardResult) for r in cold)

    # Same specs, fresh runner: every shard must come from the cache and
    # still decode through VerifyShardSpec.result_from_dict.
    warm_runner = ParallelRunner(jobs=2, cache=ResultCache(tmp_path))
    warm = warm_runner.run(specs)
    assert warm_runner.hits == len(specs) and warm_runner.misses == 0
    assert all(isinstance(r, VerifyShardResult) for r in warm)
    assert [r.to_dict() for r in warm] == [r.to_dict() for r in cold]
    merged = merge_shards(warm, model)
    assert merged.ok and merged.properties["safety"] == PROVED


def test_shard_result_dict_roundtrip():
    res = VerifyShardResult(states=3, transitions=9, capped=False,
                            max_completion_ticks=4, violation=None)
    assert VerifyShardResult.from_dict(res.to_dict()) == res
    spec = VerifyShardSpec(rows=2, cols=2, prefix=(1, 2))
    assert spec.key() == VerifyShardSpec(rows=2, cols=2,
                                         prefix=(1, 2)).key()
    assert spec.key() != VerifyShardSpec(rows=2, cols=2,
                                         prefix=(2, 1)).key()
