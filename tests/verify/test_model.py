"""Model-vs-simulator equivalence and model-construction tests.

The transition system must be a cycle-accurate abstraction of
:class:`~repro.gline.network.GLineBarrierNetwork`: with
``barreg_write_cycles = 0`` the model's step *t* is the engine's cycle
*t*, so for *any* arrival schedule the model must release exactly the
cores the network releases, on exactly the cycles it releases them.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.params import GLineConfig
from repro.common.stats import StatsRegistry
from repro.gline.network import GLineBarrierNetwork
from repro.sim.engine import Engine
from repro.verify import GLBarrierModel, PropertyViolation, get_scenario
from repro.verify.model import MR, ROW_FIXED, SL_R, SLAVE

mesh_shapes = st.tuples(st.integers(1, 4), st.integers(1, 4)).filter(
    lambda rc: rc[0] * rc[1] >= 2)


def model_release_cycles(model, schedules):
    """Run the concrete model; map core id -> list of release steps."""
    state = model.initial()
    out = {c: [] for c in range(model.rows * model.cols)}

    def releases_of(s):
        regs = {}
        for r in range(model.rows):
            base = r * model.row_size
            regs[r * model.cols] = s[base + MR]
            for i in range(model.num_slaves_h):
                off = base + ROW_FIXED + i * SLAVE
                regs[r * model.cols + i + 1] = s[off + SL_R]
        return regs

    horizon = len(schedules) + 64
    for t in range(horizon):
        before = releases_of(state)
        cores = schedules[t] if t < len(schedules) else []
        state = model.step_cores(state, cores)
        after = releases_of(state)
        for c, n in after.items():
            if n > before[c]:
                out[c].append(t)
        if model.is_complete(state) and t >= len(schedules):
            break
    return out


def network_release_cycles(rows, cols, schedules, episodes):
    engine = Engine()
    net = GLineBarrierNetwork(engine, StatsRegistry(rows * cols), rows,
                              cols, GLineConfig(barreg_write_cycles=0))
    out = {c: [] for c in range(rows * cols)}
    for t, cores in enumerate(schedules):
        for cid in cores:
            engine.schedule_at(t, lambda c=cid: net.arrive(
                c, lambda c=c: out[c].append(engine.now)))
    engine.run()
    assert net.barriers_completed == episodes
    return out


@settings(max_examples=40, deadline=None)
@given(shape=mesh_shapes, data=st.data())
def test_model_matches_network_on_random_schedules(shape, data):
    """For random arrival schedules, model releases at step t exactly
    when the network resumes the core at cycle t + 1."""
    rows, cols = shape
    n = rows * cols
    episodes = data.draw(st.integers(1, 3))
    times = [data.draw(st.lists(st.integers(0, 25), min_size=n,
                                max_size=n))
             for _ in range(episodes)]

    # Per-episode offsets keep arrivals of episode k+1 after episode k's
    # release (the model forbids re-arrival before the cooldown clears).
    schedules = []
    offset = 0
    for ep in range(episodes):
        last = offset + max(times[ep])
        for cid, t in enumerate(times[ep]):
            at = offset + t
            while len(schedules) <= at:
                schedules.append([])
            schedules[at].append(cid)
        offset = last + 10   # > completion bound + cooldown

    model = GLBarrierModel(rows, cols, episodes=episodes,
                           symmetric=False)
    got_model = model_release_cycles(model, schedules)
    got_net = network_release_cycles(rows, cols, schedules, episodes)

    for c in range(n):
        assert len(got_model[c]) == len(got_net[c]) == episodes
        # Network resumes one cycle after the releasing tick.
        assert [t + 1 for t in got_model[c]] == got_net[c], \
            f"core {c}: model {got_model[c]} vs network {got_net[c]}"


@pytest.mark.parametrize("shape,expected", [
    ((2, 2), 4), ((3, 3), 4), ((4, 4), 4), ((1, 4), 2), ((2, 1), 4)])
def test_completion_latency_pinned(shape, expected):
    """All-at-once arrival completes in exactly the paper's latency."""
    rows, cols = shape
    model = GLBarrierModel(rows, cols, symmetric=False)
    state = model.initial()
    state = model.step_cores(state, range(rows * cols))
    ticks = 1
    while not model.is_complete(state):
        state = model.step_cores(state, [])
        ticks += 1
        assert ticks < 32, "model failed to complete"
    assert ticks == expected
    assert model.max_completion_ticks == expected


def test_hardened_adds_one_validation_cycle():
    model = GLBarrierModel(
        2, 2, scenario=get_scenario("fault-free-hardened"),
        symmetric=False)
    state = model.step_cores(model.initial(), range(4))
    ticks = 1
    while not model.is_complete(state):
        state = model.step_cores(state, [])
        ticks += 1
    assert ticks == 5 == model.completion_bound


def test_construction_validation():
    with pytest.raises(ValueError):
        GLBarrierModel(8, 2)            # beyond the S-CSMA 7x7 limit
    with pytest.raises(ValueError):
        GLBarrierModel(1, 1)            # no barrier to check
    with pytest.raises(ValueError):
        GLBarrierModel(2, 2, episodes=0)
    with pytest.raises(ValueError):
        # row_tx fault needs cols >= 2
        GLBarrierModel(4, 1, scenario=get_scenario("stuck-row-tx-low"))
    with pytest.raises(ValueError):
        GLBarrierModel(1, 4, mutation="mv-early-done")


def test_actions_structure():
    """Action 0 is the empty tick; the last action is maximal."""
    model = GLBarrierModel(2, 3)
    acts = model.actions(model.initial())
    assert acts[0] == ((0, ()), (0, ()))
    assert acts[-1] == model.max_action(model.initial())
    # 2 rows x (master in {0,1} x slave count in {0,1,2}) = 6*6 options.
    assert len(acts) == 36


def test_step_cores_rejects_double_arrival():
    model = GLBarrierModel(2, 2, symmetric=False)
    state = model.step_cores(model.initial(), [0])
    with pytest.raises(ValueError):
        model.step_cores(state, [0])    # already waiting


def test_violation_is_exception_with_property():
    model = GLBarrierModel(2, 2, mutation="mh-early-flag",
                           symmetric=False)
    # Both masters arrive; the mutated rows flag with zero slave signals
    # and the column stage releases cores 1 and 3 never arrived at.
    state = model.step_cores(model.initial(), [0, 2])
    with pytest.raises(PropertyViolation) as exc_info:
        for _ in range(8):
            state = model.step_cores(state, [])
    assert exc_info.value.prop == "safety"
