"""Model <-> simulator conformance: concretize, replay, export, lift.

The two directions of the bridge are exercised end to end: a canonical
counterexample concretizes to per-cycle schedules that reproduce the
violation on the *real* :class:`GLineBarrierNetwork` (abstract ->
concrete), and a recorded simulator trace replays through the model
with identical release cycles (concrete -> abstract, refinement).
"""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.common.params import GLineConfig
from repro.common.stats import StatsRegistry
from repro.gline.network import GLineBarrierNetwork
from repro.obs import Observability, RingTracer
from repro.sim.engine import Engine
from repro.verify import (GLBarrierModel, concretize, explore,
                          export_counterexample, get_scenario,
                          lift_perfetto, lift_trace, replay_on_simulator)

_spec = importlib.util.spec_from_file_location(
    "validate_trace",
    Path(__file__).resolve().parents[2] / "scripts" / "validate_trace.py")
validate_trace = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(validate_trace)
check_counterexample = validate_trace.check_counterexample


def _violating_model(mutation="mh-early-flag", rows=2, cols=2):
    model = GLBarrierModel(rows, cols, mutation=mutation)
    result = explore(model)
    assert result.violation is not None
    return model, result.violation


@pytest.mark.parametrize("mutation", ["mh-early-flag", "mv-early-done"])
def test_mutation_counterexample_confirms_on_simulator(mutation):
    model, cex = _violating_model(mutation)
    conc = concretize(model, cex.action_indices)
    assert conc.violating
    assert any(conc.schedules), "counterexample with no arrivals"
    replay = replay_on_simulator(2, 2, conc.schedules, mutation=mutation)
    assert replay.confirmed, replay.summary()
    core, cycle = replay.early_releases[0]
    # The violation the model predicts is the one hardware exhibits: the
    # released core resumed while some core had strictly fewer arrivals.
    assert 0 <= core < 4 and cycle <= len(conc.schedules) + 8


def test_safe_schedule_does_not_confirm():
    """Concretizing a non-violating path replays without early release
    -- the detector itself does not cry wolf."""
    replay = replay_on_simulator(2, 2, [[0, 1, 2, 3]])
    assert not replay.confirmed
    assert len(replay.releases) == 4
    assert "no early release" in replay.summary()


def test_export_roundtrip_validates(tmp_path):
    model, cex = _violating_model("mh-early-flag")
    conc = concretize(model, cex.action_indices)
    replay = replay_on_simulator(2, 2, conc.schedules,
                                 mutation="mh-early-flag")
    paths = export_counterexample(
        replay, tmp_path / "cex",
        {"property": cex.prop, "message": cex.message})
    # The validator script audits the stamped artifact...
    print(check_counterexample(tmp_path / "cex.perfetto.json"))
    doc = json.loads((tmp_path / "cex.perfetto.json").read_text())
    meta = doc["otherData"]["verify"]
    assert meta["mutation"] == "mh-early-flag"
    assert meta["confirmed"] is True
    assert meta["property"] == "safety"
    # ...and the VCD companion exists and names G-line signals.
    vcd = (tmp_path / "cex.vcd").read_text()
    assert "$enddefinitions" in vcd and "gline" in vcd
    assert set(paths) == {"perfetto", "vcd"}
    # The exported document lifts back into the model and the lift
    # reports the same divergence the replay confirmed.
    lifted = lift_perfetto(doc, 2, 2, mutation="mh-early-flag")
    assert lifted.trace_releases, "export lost the release instants"


def _record_real_trace(rows, cols, schedules):
    engine = Engine()
    tracer = RingTracer(capacity=65536)
    net = GLineBarrierNetwork(
        engine, StatsRegistry(rows * cols), rows, cols,
        GLineConfig(barreg_write_cycles=2))
    net.set_obs(Observability(tracer=tracer))
    for t, cores in enumerate(schedules):
        for cid in cores:
            engine.schedule_at(t, lambda c=cid: net.arrive(c, None))
    engine.run()
    return list(tracer)


def test_real_trace_refines_model():
    """A 2x3 network run over 3 episodes lifts into the model with
    matching release cycles -- even at a nonzero write latency, because
    arrival timestamps are visibility cycles."""
    rows, cols, n = 2, 3, 6
    schedules = [[] for _ in range(40)]
    for ep, base in enumerate([0, 14, 28]):
        for cid in range(n):
            schedules[base + (cid * (ep + 1)) % 5].append(cid)
    events = _record_real_trace(rows, cols, schedules)
    lifted = lift_trace(events, rows, cols)
    assert lifted.ok, lifted.mismatches
    assert lifted.episodes == 3
    assert sum(lifted.trace_releases.values()) == 3 * n
    assert lifted.model_releases == lifted.trace_releases
    assert "refines" in lifted.summary()


def test_lift_flags_forged_release():
    """Tampering with the recorded stream (a release the hardware never
    earned) must break refinement."""
    events = _record_real_trace(2, 2, [[0, 1, 2, 3]])
    release = next(e for e in events if e.kind == "gline.release")
    forged = events + [type(release)(time=release.time + 7,
                                     source=release.source,
                                     kind=release.kind,
                                     detail={"cores": 4, "release":
                                             release.time + 8,
                                             "remaining": 0})]
    lifted = lift_trace(forged, 2, 2)
    assert not lifted.ok
    assert any("trace records 4" in m for m in lifted.mismatches)


def test_replay_under_hardened_fault_scenario_stays_safe():
    """The stuck-line scenario that the model proves safe must also
    replay safely: the watchdog retries or quarantines, and nobody is
    released early."""
    scenario = get_scenario("stuck-row-tx-low")
    replay = replay_on_simulator(
        2, 4, [[0, 1, 2, 3, 4, 5, 6, 7]], scenario=scenario)
    assert not replay.confirmed
    assert len(replay.releases) == 8
