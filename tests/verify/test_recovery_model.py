"""Recovery FSM verification: properties, mutation catch, replay.

The model checker proves the self-healing extension safe -- including
the two recovery-only properties ``bounded-recovery`` (a degraded
network always has a probe pending) and ``flap-bound`` (re-admission
flaps never exceed the budget) -- and the planted ``probation-skip-
shadow`` mutation is caught, concretized, and confirmed on the real
simulator, closing the model <-> hardware loop for the recovery path.
"""

import pytest

from repro.verify import (GLBarrierModel, P_FLAP, P_RECOVERY, PROVED,
                          SKIPPED, concretize, expectation_verdict,
                          explore, get_scenario, replay_on_simulator)

RECOVERY_SCENARIOS = ["intermittent-row-tx-recovers",
                      "flaky-row-tx-retires", "probation-glitch"]


@pytest.mark.parametrize("name", RECOVERY_SCENARIOS)
def test_recovery_scenarios_prove_all_properties(name):
    scenario = get_scenario(name)
    result = explore(GLBarrierModel(2, 2, scenario=scenario))
    assert result.ok, f"{name}: {result.violation}"
    assert result.properties["safety"] == PROVED
    assert result.properties["exactly-once"] == PROVED
    assert result.properties["deadlock-freedom"] == PROVED
    assert result.properties[P_RECOVERY] == PROVED
    assert result.properties[P_FLAP] == PROVED
    matched, why = expectation_verdict(scenario, result)
    assert matched, why


def test_recovery_properties_absent_without_recovery():
    result = explore(GLBarrierModel(2, 2))
    assert P_RECOVERY not in result.properties
    assert P_FLAP not in result.properties


def test_recovery_scenarios_scale_to_2x4():
    scenario = get_scenario("intermittent-row-tx-recovers")
    result = explore(GLBarrierModel(2, 4, scenario=scenario))
    assert result.ok and result.properties[P_RECOVERY] == PROVED
    assert result.properties["four-cycle"] == SKIPPED


def test_shadow_mutation_caught_and_confirmed_on_simulator():
    """The full loop: explore finds the safety violation the skipped
    shadow check allows, concretize lifts it to per-cycle schedules plus
    glitch cycles, and the real network -- with the same mutation --
    reproduces the early release.  The un-mutated network under the
    *same* schedule withholds the release: the shadow check is exactly
    the mechanism standing between the glitch and the violation."""
    scenario = get_scenario("probation-glitch")
    model = GLBarrierModel(2, 2, scenario=scenario,
                           mutation="probation-skip-shadow")
    result = explore(model)
    assert result.violation is not None
    assert result.violation.prop == "safety"

    conc = concretize(model, result.violation.action_indices)
    assert conc.violating
    assert conc.glitches, "counterexample must use the planted glitch"

    mutated = replay_on_simulator(2, 2, conc.schedules,
                                  scenario=scenario,
                                  mutation="probation-skip-shadow",
                                  glitches=conc.glitches)
    assert mutated.confirmed, mutated.summary()

    guarded = replay_on_simulator(2, 2, conc.schedules,
                                  scenario=scenario,
                                  glitches=conc.glitches)
    assert not guarded.confirmed, guarded.summary()
