"""Detection-completeness proofs for the counting-line integrity layer.

The miscount adversary (``CollectiveModel(adversary_budget=k)``) may
perturb any stage master's counting line by +-1 on any round-phase tick,
up to *k* times per episode, under every arrival interleaving.  The
proofs here establish:

* ``integrity="off"`` is *vulnerable*: one miscount yields a silent
  wrong value (violated + replay-confirmed on the real network);
* ``echo`` and ``residue`` are *detection-complete at k=1*: no
  undetected wrong value exists on any mesh up to 4x4 (the two 4x4
  explorations take minutes and run under ``REPRO_VERIFY_EXHAUSTIVE=1``,
  which CI's integrity job sets; every smaller mesh is proved here);
* the bound is *tight*: at k=2 the adversary defeats echo (corrupt both
  samples of one round identically) and residue (a data-round /
  digit-round pair whose deltas agree mod 15), and both defeats
  concretize and replay;
* ``vote`` *corrects* k=1 silently (proved) and is defeated at k=2;
* the planted ``skip-echo-compare`` mutation is caught by the adversary
  model, concretized, and CONFIRMED by replay -- while the same
  schedule+injections on an unmutated echo network heals cleanly.
"""

import os

import pytest

from repro.verify import (CollectiveModel, P_COLL_VALUE, PROVED, VIOLATED,
                          explore_collective, replay_collective)

ALL_MESHES = [(r, c) for r in range(1, 5) for c in range(1, 5)]
#: 4x4 explorations run ~3-4 minutes each; everything smaller is <1 min.
FAST_MESHES = [m for m in ALL_MESHES if m != (4, 4)]
EXHAUSTIVE = os.environ.get("REPRO_VERIFY_EXHAUSTIVE") == "1"

#: Kind rotated per mesh (as in test_collectives_model) so every counted
#: kind meets the adversary on several meshes; bcast is excluded -- its
#: data rides the release line, which miscounts cannot touch.
ROTATION = ("sum", "min", "max", "any", "all", "vote")


def _case(rows, cols):
    kind = ROTATION[(rows * 4 + cols) % len(ROTATION)]
    width = 1 if max(rows, cols) >= 4 else 2
    mode = "echo" if (rows + cols) % 2 else "residue"
    return kind, width, mode


@pytest.mark.parametrize("rows,cols", FAST_MESHES)
def test_detection_complete_k1_all_meshes(rows, cols):
    kind, width, mode = _case(rows, cols)
    model = CollectiveModel(rows, cols, kind, width=width,
                            integrity=mode, adversary_budget=1)
    result = explore_collective(model, max_states=1_000_000)
    assert not result.capped
    assert result.ok, result.counterexample and result.counterexample.message
    assert result.verdicts[P_COLL_VALUE] == PROVED


@pytest.mark.skipif(not EXHAUSTIVE,
                    reason="4x4 adversary proofs take ~4 min each; "
                           "set REPRO_VERIFY_EXHAUSTIVE=1 (CI does)")
@pytest.mark.parametrize("mode", ["echo", "residue"])
def test_detection_complete_k1_4x4(mode):
    model = CollectiveModel(4, 4, "sum", width=1,
                            integrity=mode, adversary_budget=1)
    result = explore_collective(model, max_states=1_000_000)
    assert not result.capped
    assert result.ok, result.counterexample and result.counterexample.message


@pytest.mark.parametrize("mode", ["echo", "residue", "vote"])
def test_vote_and_modes_prove_on_2x3_sum(mode):
    model = CollectiveModel(2, 3, "sum", width=2,
                            integrity=mode, adversary_budget=1)
    result = explore_collective(model)
    assert result.ok, result.counterexample and result.counterexample.message


# ---------------------------------------------------------------------- #
# The off-mode vulnerability: silent corruption, concretized + replayed.
# ---------------------------------------------------------------------- #
def test_off_mode_single_miscount_is_silent_corruption():
    model = CollectiveModel(2, 2, "sum", width=2, adversary_budget=1)
    result = explore_collective(model)
    assert result.verdicts[P_COLL_VALUE] == VIOLATED
    ce = result.counterexample
    assert ce is not None and ce.injections, \
        "the counterexample must carry the concrete miscount"
    replay = replay_collective(2, 2, "sum", ce.schedule, width=2,
                               injections=ce.injections)
    assert replay.confirmed and replay.wrong_values, replay.summary()
    # The identical schedule with integrity on heals: same injections,
    # correct values everywhere.
    healed = replay_collective(2, 2, "sum", ce.schedule, width=2,
                               integrity="echo", injections=ce.injections)
    assert not healed.confirmed, healed.summary()


def test_counterexample_dict_carries_injections():
    model = CollectiveModel(2, 2, "sum", width=2, adversary_budget=1)
    d = explore_collective(model).to_dict()
    assert d["adversary_budget"] == 1
    assert d["counterexample"]["injections"]


# ---------------------------------------------------------------------- #
# Tightness: every mode's detection bound is exactly k=1.
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("mode", ["echo", "residue", "vote"])
def test_k2_defeats_every_mode_and_replays(mode):
    model = CollectiveModel(2, 2, "sum", width=2,
                            integrity=mode, adversary_budget=2)
    result = explore_collective(model, max_states=1_000_000)
    assert result.verdicts[P_COLL_VALUE] == VIOLATED, \
        f"{mode} unexpectedly survives two coordinated miscounts"
    ce = result.counterexample
    assert len(ce.injections) == 2
    replay = replay_collective(2, 2, "sum", ce.schedule, width=2,
                               integrity=mode, injections=ce.injections)
    assert replay.confirmed, replay.summary()


# ---------------------------------------------------------------------- #
# Planted mutation: the verification layer checks itself.
# ---------------------------------------------------------------------- #
def test_skip_echo_compare_mutation_caught_and_replay_confirms():
    model = CollectiveModel(2, 2, "sum", width=2, integrity="echo",
                            mutation="skip-echo-compare",
                            adversary_budget=1)
    result = explore_collective(model)
    assert result.verdicts[P_COLL_VALUE] == VIOLATED
    ce = result.counterexample
    assert ce is not None and ce.injections
    replay = replay_collective(2, 2, "sum", ce.schedule, width=2,
                               mutation="skip-echo-compare",
                               integrity="echo", injections=ce.injections)
    assert replay.confirmed and replay.wrong_values, replay.summary()
    # Without the mutation the same run is detected and healed in-wire.
    clean = replay_collective(2, 2, "sum", ce.schedule, width=2,
                              integrity="echo", injections=ce.injections)
    assert not clean.confirmed, clean.summary()
    assert not clean.hung and not clean.wrong_values


def test_mutation_is_inert_without_adversary():
    # skip-echo-compare only matters when a round is actually corrupted:
    # with no miscounts every compare it skips would have passed anyway.
    model = CollectiveModel(2, 2, "sum", width=2, integrity="echo",
                            mutation="skip-echo-compare")
    assert explore_collective(model).ok
