"""Exhaustive exploration: golden state-space sizes and proofs.

The BFS is fully deterministic, so exact state/transition counts are
pinned here (and re-pinned in CI's verify-smoke job).  A count drift
means the transition system changed -- deliberate model edits must
update these numbers alongside a note in docs/verification.md.
"""

import pytest

from repro.verify import (ALL_PROPERTIES, GLBarrierModel, NOT_PROVED,
                          PROVED, VIOLATED, explore, replay_actions)

#: (rows, cols, episodes) -> (states, transitions).
GOLDEN = {
    (2, 2, 1): (28, 87),
    (1, 4, 1): (10, 24),
    (2, 4, 1): (84, 900),
    (3, 3, 1): (199, 3981),
    (2, 2, 2): (55, 174),
    (1, 4, 2): (19, 48),
}


@pytest.mark.parametrize("shape,golden", sorted(GOLDEN.items()))
def test_fault_free_proofs_and_golden_counts(shape, golden):
    rows, cols, episodes = shape
    result = explore(GLBarrierModel(rows, cols, episodes=episodes))
    assert result.ok
    assert (result.states, result.transitions) == golden
    for prop in ALL_PROPERTIES:
        assert result.properties[prop] == PROVED
    assert result.max_completion_ticks <= \
        GLBarrierModel(rows, cols).completion_bound


def test_exploration_is_deterministic():
    a = explore(GLBarrierModel(2, 3))
    b = explore(GLBarrierModel(2, 3))
    assert (a.states, a.transitions) == (b.states, b.transitions)
    assert a.properties == b.properties


def test_state_cap_downgrades_proofs():
    result = explore(GLBarrierModel(3, 3), max_states=20)
    assert result.capped
    assert not result.ok
    assert result.violation is None
    for prop in ALL_PROPERTIES:
        assert result.properties[prop] == NOT_PROVED


def test_mutation_violation_has_replayable_path():
    model = GLBarrierModel(2, 2, mutation="mh-early-flag")
    result = explore(model)
    assert result.violation is not None
    assert result.properties["safety"] == VIOLATED
    cex = result.violation
    states, actions, violation = replay_actions(model,
                                                cex.action_indices)
    assert violation is not None
    assert violation.prop == cex.prop
    assert len(states) == len(actions) == len(cex.action_indices)
    # Round-trips through the cache/IPC dict form.
    assert cex.to_dict()["action_indices"] == cex.action_indices


def test_symmetry_reduction_only_shrinks_the_census():
    """The symmetric and asymmetric state spaces prove the same
    properties; symmetry only folds states."""
    sym = explore(GLBarrierModel(2, 3))
    asym = explore(GLBarrierModel(2, 3, symmetric=False))
    assert sym.ok and asym.ok
    assert sym.states <= asym.states
    assert sym.properties == asym.properties


def test_replay_actions_rejects_out_of_range_index():
    model = GLBarrierModel(2, 2)
    with pytest.raises(ValueError):
        replay_actions(model, [10 ** 6])
