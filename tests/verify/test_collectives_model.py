"""Model checking of the collective fabric: the three properties on
every mesh up to 4x4, plus planted mutations caught, concretized and
confirmed by replay on the real simulator."""

import pytest

from repro.collectives import ops
from repro.verify import (
    COLLECTIVE_PROPERTIES, CollectiveModel, PROVED, VIOLATED,
    P_COLL_TERMINATION, P_COLL_VALUE, explore_collective,
    replay_collective)

ALL_MESHES = [(r, c) for r in range(1, 5) for c in range(1, 5)]
#: Kind rotated per mesh so every kind is proved on several meshes
#: while the big meshes stay single-kind (state spaces are ~50k there).
ROTATION = ("sum", "min", "max", "any", "all", "vote", "bcast")


def _mesh_width(rows, cols):
    # Keep 4-dimension meshes at width 1 (their interleaving space
    # dominates anyway); smaller meshes get discriminating operands.
    return 1 if max(rows, cols) >= 4 else 2


@pytest.mark.parametrize("rows,cols", ALL_MESHES)
def test_proves_all_meshes_to_4x4(rows, cols):
    kind = ROTATION[(rows * 4 + cols) % len(ROTATION)]
    model = CollectiveModel(rows, cols, kind,
                            width=_mesh_width(rows, cols))
    result = explore_collective(model, max_states=1_000_000)
    assert not result.capped
    assert result.verdicts == {p: PROVED for p in COLLECTIVE_PROPERTIES}
    assert result.counterexample is None
    assert result.states > 0 and result.transitions > 0


@pytest.mark.parametrize("kind", ops.KINDS)
def test_all_kinds_prove_on_2x3(kind):
    model = CollectiveModel(2, 3, kind, width=2)
    result = explore_collective(model)
    assert result.ok, result.counterexample


def test_explicit_values_and_reference():
    model = CollectiveModel(2, 2, "sum", width=4,
                            values=[3, 5, 7, 11])
    assert model.reference == 26
    assert explore_collective(model).ok


def test_state_counts_are_deterministic():
    a = explore_collective(CollectiveModel(2, 2, "sum", width=2))
    b = explore_collective(CollectiveModel(2, 2, "sum", width=2))
    assert (a.states, a.transitions) == (b.states, b.transitions)


# ---------------------------------------------------------------------- #
# Planted mutations: caught, concretized, confirmed by replay.
# ---------------------------------------------------------------------- #
MUTATION_CASES = [
    ("master-skip-own", 2, 2, "sum", 2),
    ("slave-double-pulse", 2, 3, "sum", 2),
    ("bcast-drop-msb", 2, 2, "max", 2),
]


@pytest.mark.parametrize("mutation,rows,cols,kind,width", MUTATION_CASES)
def test_mutation_caught_and_replay_confirms(mutation, rows, cols, kind,
                                             width):
    model = CollectiveModel(rows, cols, kind, width=width,
                            mutation=mutation)
    result = explore_collective(model)
    assert not result.ok
    ce = result.counterexample
    assert ce is not None
    assert VIOLATED in result.verdicts.values()
    assert ce.schedule, "counterexample must carry a concrete schedule"

    replay = replay_collective(rows, cols, kind, ce.schedule,
                               width=width, mutation=mutation)
    assert replay.confirmed, replay.summary()
    # The same schedule on a clean network must NOT reproduce anything.
    clean = replay_collective(rows, cols, kind, ce.schedule, width=width)
    assert not clean.confirmed, clean.summary()
    assert not clean.hung and not clean.wrong_values


def test_double_pulse_hangs_single_row():
    # On a 1xN mesh the double pulse makes the master finish its gather
    # early and start rounds without the last operand: the straggler is
    # never released (termination), which replay reproduces as a hang.
    model = CollectiveModel(1, 3, "sum", width=3,
                            mutation="slave-double-pulse")
    result = explore_collective(model)
    assert result.verdicts[P_COLL_TERMINATION] == VIOLATED or \
        result.verdicts[P_COLL_VALUE] == VIOLATED
    ce = result.counterexample
    replay = replay_collective(1, 3, "sum", ce.schedule, width=3,
                               mutation="slave-double-pulse")
    assert replay.confirmed


# ---------------------------------------------------------------------- #
# Wire faults at the model level.
# ---------------------------------------------------------------------- #
def test_stuck_low_tx_is_a_hang():
    model = CollectiveModel(2, 2, "sum", width=2, stuck={"txH0": 0})
    result = explore_collective(model)
    assert result.verdicts[P_COLL_TERMINATION] == VIOLATED
    replay = replay_collective(2, 2, "sum", result.counterexample.schedule,
                               width=2, stuck={"txH0": 0})
    assert replay.hung


def test_stuck_high_rel_corrupts_values_unguarded():
    # Without the hardened guard a stuck-high release line feeds bogus
    # reflection bits straight into the accumulators.
    model = CollectiveModel(2, 2, "sum", width=2, stuck={"relH0": 1})
    result = explore_collective(model)
    assert result.verdicts[P_COLL_VALUE] == VIOLATED
    replay = replay_collective(2, 2, "sum", result.counterexample.schedule,
                               width=2, stuck={"relH0": 1})
    assert replay.wrong_values


def test_counterexample_roundtrips_to_dict():
    model = CollectiveModel(2, 2, "sum", width=2,
                            mutation="master-skip-own")
    result = explore_collective(model)
    d = result.to_dict()
    assert d["mutation"] == "master-skip-own"
    assert d["counterexample"]["schedule"]
    assert d["verdicts"][P_COLL_VALUE] == VIOLATED
