"""The ``repro verify`` subcommand end to end.

Exit-code contract: 0 when the run matches the scenario's registered
expectation -- every property proved for ``pass``/``failover``
scenarios, a counterexample found *and* confirmed on the simulator for
``violation`` scenarios and mutations -- and 1 on a mismatch, 2 on
usage errors.
"""

import json

from repro.cli import main


def test_fault_free_proof_pins_golden_counts(capsys):
    rc = main(["verify", "--mesh", "2x2"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "states=28 transitions=87" in out
    assert out.count(": PROVED") == 4
    assert "expectation [pass]: MATCHED" in out


def test_list_registry(capsys):
    rc = main(["verify", "--list"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "fault-free [pass]:" in out
    assert "mh-early-flag:" in out


def test_mutation_finds_confirms_and_exports(tmp_path, capsys):
    prefix = tmp_path / "cex"
    out_json = tmp_path / "report.json"
    rc = main(["verify", "--mesh", "2x2", "--mutation", "mh-early-flag",
               "--export-prefix", str(prefix), "--out", str(out_json)])
    captured = capsys.readouterr()
    assert rc == 0      # violation expected, found, and confirmed
    assert "property safety: VIOLATED" in captured.out
    assert "EARLY RELEASE CONFIRMED" in captured.out
    assert "counterexample exported" in captured.err
    assert prefix.with_suffix(".perfetto.json").exists()
    assert prefix.with_suffix(".vcd").exists()
    report = json.loads(out_json.read_text())
    assert report["kind"] == "verify-report"
    assert report["properties"]["safety"] == "violated"
    assert report["replay"]["confirmed"] is True
    assert report["expectation"]["matched"] is True


def test_failover_scenario_matches_expectation(capsys):
    rc = main(["verify", "--mesh", "2x4", "--scenario",
               "stuck-row-tx-low"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "expectation [failover]: MATCHED" in out
    assert "property four-cycle: SKIPPED" in out


def test_sharded_run_agrees_with_direct(tmp_path, capsys):
    rc = main(["verify", "--mesh", "2x4", "--shard-depth", "2",
               "--jobs", "2", "--cache-dir", str(tmp_path)])
    captured = capsys.readouterr()
    assert rc == 0
    assert "shard(s) at depth 2" in captured.err
    assert captured.out.count(": PROVED") == 4


def test_capped_exploration_fails_the_expectation(capsys):
    rc = main(["verify", "--mesh", "3x3", "--max-states", "20"])
    out = capsys.readouterr().out
    assert rc == 1
    assert "capped=true" in out
    assert "NOT-PROVED" in out


def test_usage_errors_exit_2(capsys):
    assert main(["verify", "--mesh", "banana"]) == 2
    capsys.readouterr()
    assert main(["verify", "--scenario", "no-such"]) == 2
    capsys.readouterr()
    assert main(["verify", "--mesh", "9x9"]) == 2
