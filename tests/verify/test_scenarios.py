"""Fault scenarios and deliberate mutations against the checker.

Hardened scenarios must stay *safe* under exploration (the watchdog /
failover path may slow an episode but never releases early); the
unhardened demo scenario and both FSM mutations must be caught with a
concrete counterexample.  ``expectation_verdict`` turns these verdicts
into CI pass/fail decisions.
"""

import pytest

from repro.verify import (EXPECT_FAILOVER, EXPECT_PASS, EXPECT_VIOLATION,
                          MUTATIONS, PROVED, SCENARIOS, SKIPPED,
                          GLBarrierModel, expectation_verdict, explore,
                          get_mutation, get_scenario)

HARDENED_SAFE = ["fault-free-hardened", "stuck-row-tx-low",
                 "stuck-col-rel-high", "stuck-row-rel-low",
                 "miscount-row-tx"]


def test_registries_are_well_formed():
    assert set(SCENARIOS) >= {"fault-free", *HARDENED_SAFE,
                              "miscount-row-tx-unhardened"}
    assert set(MUTATIONS) == {"mh-early-flag", "mv-early-done",
                              "probation-skip-shadow"}
    for s in SCENARIOS.values():
        assert s.expect in (EXPECT_PASS, EXPECT_FAILOVER,
                            EXPECT_VIOLATION)
        assert s.description
    with pytest.raises(KeyError):
        get_scenario("no-such-scenario")
    with pytest.raises(KeyError):
        get_mutation("no-such-mutation")


@pytest.mark.parametrize("name", HARDENED_SAFE)
def test_hardened_scenarios_stay_safe(name):
    scenario = get_scenario(name)
    result = explore(GLBarrierModel(2, 4, scenario=scenario))
    assert result.ok, f"{name}: {result.violation}"
    assert result.properties["safety"] == PROVED
    assert result.properties["exactly-once"] == PROVED
    if not scenario.is_fault_free:
        # Retries stretch the episode past the 4-cycle bound by design.
        assert result.properties["four-cycle"] == SKIPPED
    matched, why = expectation_verdict(scenario, result)
    assert matched, why


def test_unhardened_miscount_is_caught():
    scenario = get_scenario("miscount-row-tx-unhardened")
    result = explore(GLBarrierModel(2, 4, scenario=scenario))
    assert result.violation is not None
    assert result.violation.prop in ("safety", "exactly-once")
    matched, why = expectation_verdict(scenario, result)
    assert matched, why


@pytest.mark.parametrize("name", sorted(MUTATIONS))
def test_mutations_are_caught(name):
    # The shadow mutation only means anything during recovery probation;
    # it rides on the glitch scenario (see test_recovery_model.py for
    # the full concretize/replay round trip).
    scenario = (get_scenario("probation-glitch")
                if name == "probation-skip-shadow"
                else get_scenario("fault-free"))
    result = explore(GLBarrierModel(2, 2, scenario=scenario,
                                    mutation=name))
    assert result.violation is not None
    assert result.violation.prop == "safety"
    assert result.violation.action_indices


def test_expectation_verdict_rejects_mismatches():
    # A clean pass does NOT satisfy a violation expectation...
    clean = explore(GLBarrierModel(2, 2))
    matched, why = expectation_verdict(
        get_scenario("miscount-row-tx-unhardened"), clean)
    assert not matched and "violation" in why
    # ...and a capped run does not satisfy a pass expectation.
    capped = explore(GLBarrierModel(3, 3), max_states=20)
    matched, why = expectation_verdict(get_scenario("fault-free"), capped)
    assert not matched


def test_scenario_applicability_is_validated():
    with pytest.raises(ValueError):
        GLBarrierModel(4, 1, scenario=get_scenario("stuck-row-tx-low"))
    with pytest.raises(ValueError):
        GLBarrierModel(1, 4, scenario=get_scenario("stuck-col-rel-high"))
