"""Flight-recorder tests: bounded per-core tails, and the post-mortem
attachment to deadlock and watchdog-failover reports."""

import pytest

from helpers import make_chip
from repro.common.errors import DeadlockError
from repro.common.params import GLineConfig
from repro.common.stats import StatsRegistry
from repro.cpu import isa
from repro.faults import FAILOVER
from repro.gline.network import GLineBarrierNetwork
from repro.obs import FlightRecorder, Observability
from repro.sim.engine import Engine


# ---------------------------------------------------------------------- #
# Recorder unit behavior
# ---------------------------------------------------------------------- #
def test_per_core_tails_are_bounded():
    fr = FlightRecorder(num_cores=2, depth=3)
    for i in range(10):
        fr.record(0, i, "core0", "core.barrier.enter", barrier=i)
    assert [e.time for e in fr.tail(0)] == [7, 8, 9]
    assert fr.tail(1) == []


def test_out_of_range_core_ignored():
    fr = FlightRecorder(num_cores=2)
    fr.record(99, 1, "x", "k")          # must not raise
    fr.record(-1, 1, "x", "k")
    assert fr.tail(0) == [] and fr.tail(1) == []


def test_depth_below_one_rejected():
    with pytest.raises(ValueError):
        FlightRecorder(num_cores=1, depth=0)


def test_format_tail_empty_is_empty_string():
    assert FlightRecorder(num_cores=4).format_tail() == ""


def test_format_tail_lists_only_cores_with_events():
    fr = FlightRecorder(num_cores=4)
    fr.record(5, 5, "glnet", "gline.arrive", cid=5)   # ignored (range)
    fr.record(2, 7, "glnet", "gline.arrive", cid=2)
    text = fr.format_tail()
    assert text.startswith("flight recorder:")
    assert "core 2" in text and "@7 glnet gline.arrive" in text
    assert "core 0" not in text
    # Restricting to cores without events yields nothing.
    assert fr.format_tail(cores=[0, 1]) == ""


# ---------------------------------------------------------------------- #
# Deadlock reports
# ---------------------------------------------------------------------- #
def deadlock_message(obs):
    chip = make_chip(4, "gl")
    if obs is not None:
        chip.set_obs(obs)

    def prog(cid):
        if cid != 3:
            yield isa.BarrierOp()
        yield isa.Compute(1)

    with pytest.raises(DeadlockError) as exc:
        chip.run([prog(c) for c in range(4)])
    assert set(exc.value.blocked_cores) == {0, 1, 2}
    return str(exc.value)


def test_deadlock_message_gains_flight_tail_with_obs():
    msg = deadlock_message(Observability.full(4))
    assert "flight recorder:" in msg
    # The blocked cores' last barrier entries are in the tail.
    assert "core 0" in msg and "core.barrier.enter" in msg


def test_deadlock_message_stable_without_obs():
    """Observability must not change the base diagnostic: the traced
    message is the untraced one plus the appended tail."""
    bare = deadlock_message(None)
    traced = deadlock_message(Observability.full(4))
    assert "flight recorder:" not in bare
    assert traced.startswith(bare)


# ---------------------------------------------------------------------- #
# Watchdog failover reports
# ---------------------------------------------------------------------- #
def failover_net(obs):
    engine = Engine()
    net = GLineBarrierNetwork(engine, StatsRegistry(4), 2, 2,
                              GLineConfig(watchdog_budget=32,
                                          watchdog_retries=2))
    if obs is not None:
        net.set_obs(obs)
    net.row_tx[1].stuck = 0                  # gather line dead -> failover
    outcomes = {}
    for cid in range(4):
        engine.schedule_at(0, lambda c=cid: net.arrive(
            c, lambda *a, c=c: outcomes.__setitem__(c, a)))
    engine.run()
    assert all(outcomes[c] == (FAILOVER,) for c in range(4))
    return net


def test_failover_report_with_flight_tail():
    net = failover_net(Observability.full(4))
    assert len(net.failover_reports) == 1
    report = net.failover_reports[0]
    assert "watchdog FAILOVER" in report
    assert "waiting cores [0, 1, 2, 3]" in report
    assert "flight recorder:" in report
    assert "gline.watchdog.failover" in report


def test_failover_report_stable_without_obs():
    net = failover_net(None)
    assert len(net.failover_reports) == 1
    assert "watchdog FAILOVER" in net.failover_reports[0]
    assert "flight recorder:" not in net.failover_reports[0]
