"""Perfetto/Chrome trace-event exporter tests: schema validation of a real
traced run, and rejection of malformed documents."""

import json

import pytest

from helpers import make_chip, run_uniform
from repro.cpu import isa
from repro.obs import Observability, to_perfetto, validate_perfetto, write_perfetto
from repro.obs.perfetto import PID_BARRIERS, PID_CORES, PID_GLINES


def traced_run(num_cores=4, barriers=2):
    chip = make_chip(num_cores, "gl")
    obs = Observability.full(num_cores)
    chip.set_obs(obs)
    run_uniform(chip, lambda c: iter(
        [isa.Compute(c)] + [isa.BarrierOp() for _ in range(barriers)]))
    return obs


# ---------------------------------------------------------------------- #
# A real trace validates and carries the expected tracks
# ---------------------------------------------------------------------- #
def test_real_trace_validates():
    obs = traced_run()
    doc = to_perfetto(obs.tracer.events,
                      accounting=obs.tracer.accounting())
    count = validate_perfetto(doc)
    assert count == len(doc["traceEvents"]) > 0
    assert doc["otherData"]["timeUnit"] == "cycles"
    assert doc["otherData"]["tracer"] == obs.tracer.accounting()


def test_metadata_events_lead_the_stream():
    doc = to_perfetto(traced_run().tracer.events)
    events = doc["traceEvents"]
    phs = [e["ph"] for e in events]
    first_non_meta = phs.index(next(p for p in phs if p != "M"))
    assert "M" not in phs[first_non_meta:]
    names = {e["args"]["name"] for e in events
             if e["ph"] == "M" and e["name"] == "process_name"}
    assert {"barrier episodes", "cores", "g-lines"} <= names


def test_barrier_wait_slices_per_core():
    """Each core's enter -> resume pair becomes one complete X slice on
    that core's thread track."""
    doc = to_perfetto(traced_run(num_cores=4, barriers=2).tracer.events)
    waits = [e for e in doc["traceEvents"]
             if e["ph"] == "X" and e["name"] == "barrier wait"
             and e["pid"] == PID_CORES]
    assert len(waits) == 4 * 2
    assert {e["tid"] for e in waits} == {0, 1, 2, 3}
    assert all(e["dur"] >= 0 for e in waits)


def test_episode_slices_on_barrier_track():
    doc = to_perfetto(traced_run(barriers=3).tracer.events)
    episodes = [e for e in doc["traceEvents"]
                if e["ph"] == "X" and e["pid"] == PID_BARRIERS]
    assert len(episodes) == 3
    assert all(e["name"].startswith("barrier ") for e in episodes)


def test_wire_counter_tracks():
    doc = to_perfetto(traced_run().tracer.events)
    counters = [e for e in doc["traceEvents"]
                if e["ph"] == "C" and e["pid"] == PID_GLINES]
    assert counters
    assert all(set(e["args"]) == {"level", "count"} for e in counters)


def test_write_perfetto_is_valid_json(tmp_path):
    obs = traced_run()
    path = tmp_path / "trace.json"
    write_perfetto(obs.tracer.events, path)
    doc = json.loads(path.read_text())
    assert validate_perfetto(doc) > 0


# ---------------------------------------------------------------------- #
# Malformed documents are rejected
# ---------------------------------------------------------------------- #
def ev(**kw):
    base = {"ph": "i", "name": "x", "pid": 0, "tid": 0, "ts": 1}
    base.update(kw)
    return base


@pytest.mark.parametrize("doc", [
    {},                                              # no traceEvents
    {"traceEvents": "nope"},                         # wrong container
    {"traceEvents": [ev(ph="Q")]},                   # unknown phase
    {"traceEvents": [ev(name=7)]},                   # non-string name
    {"traceEvents": [ev(pid="zero")]},               # non-int pid
    {"traceEvents": [ev(ts=-1)]},                    # negative timestamp
    {"traceEvents": [ev(ph="X")]},                   # X without dur
    {"traceEvents": [ev(ph="C", args={})]},          # C without args
    {"traceEvents": [ev(ph="C", args={"v": "hi"})]},  # non-numeric args
    {"traceEvents": [ev(ph="E")]},                   # E without B
    {"traceEvents": [ev(ph="B")]},                   # dangling B
])
def test_validate_rejects_malformed(doc):
    with pytest.raises(ValueError):
        validate_perfetto(doc)
