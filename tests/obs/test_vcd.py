"""VCD exporter tests: round trip, and a parse-back of a real GL episode
asserting the paper's gather -> release wire sequence."""

import pytest

from repro.common.params import GLineConfig
from repro.common.stats import StatsRegistry
from repro.gline.network import GLineBarrierNetwork
from repro.obs import (
    Observability,
    RingTracer,
    TraceEvent,
    parse_vcd,
    rise_times,
    to_vcd,
)
from repro.obs.events import GL_WIRE
from repro.sim.engine import Engine


def wire_event(time, wire, level, count):
    return TraceEvent(time, wire, GL_WIRE, {"level": level, "count": count})


# ---------------------------------------------------------------------- #
# Synthetic round trip
# ---------------------------------------------------------------------- #
def test_round_trip_levels_and_counts():
    trace = [
        wire_event(3, "net.A", 1, 2),
        wire_event(3, "net.B", 0, 0),
        wire_event(4, "net.B", 1, 1),   # A unmentioned at 4 -> driven low
    ]
    changes = parse_vcd(to_vcd(trace))
    assert set(changes) == {"net.A.level", "net.A.count",
                            "net.B.level", "net.B.count"}
    assert changes["net.A.level"] == [(0, 0), (3, 1), (4, 0)]
    assert changes["net.A.count"] == [(0, 0), (3, 2), (4, 0)]
    assert changes["net.B.level"] == [(0, 0), (4, 1), (5, 0)]


def test_trailing_all_zero_step():
    changes = parse_vcd(to_vcd([wire_event(7, "w", 1, 3)]))
    assert changes["w.level"][-1] == (8, 0)
    assert changes["w.count"][-1] == (8, 0)


def test_non_wire_events_ignored():
    trace = [TraceEvent(1, "core0", "core.barrier.enter", {})]
    text = to_vcd(trace)
    assert "$var" not in text
    assert parse_vcd(text) == {}


def test_determinism_no_wallclock():
    trace = [wire_event(1, "w", 1, 1)]
    assert to_vcd(trace) == to_vcd(trace)
    assert "$date" not in to_vcd(trace)


def test_rise_times_detects_zero_to_nonzero_only():
    changes = {"s": [(0, 0), (2, 1), (3, 1), (5, 0), (9, 1)]}
    assert rise_times(changes, "s") == [2, 9]
    assert rise_times(changes, "missing") == []


@pytest.mark.parametrize("text", [
    "$var wire 1 ! $end\n$enddefinitions $end\n",   # malformed $var
    "$enddefinitions $end\n#0\n1!\n",               # undeclared id
    "$enddefinitions $end\n#0\n9!\n",               # bad scalar value
    "$scope module s $end\n",                       # no $enddefinitions
])
def test_parse_rejects_malformed(text):
    with pytest.raises(ValueError):
        parse_vcd(text)


# ---------------------------------------------------------------------- #
# Real episode: the Figure-2 wire choreography, read back from the dump
# ---------------------------------------------------------------------- #
def run_2x2_episode():
    engine = Engine()
    net = GLineBarrierNetwork(engine, StatsRegistry(4), 2, 2,
                              GLineConfig())
    obs = Observability(tracer=RingTracer())
    net.set_obs(obs)
    releases = {}
    for cid in range(4):
        engine.schedule_at(0, lambda c=cid: net.arrive(
            c, lambda c=c: releases.__setitem__(c, engine.now)))
    engine.run()
    return obs.tracer, releases


def test_episode_parse_back_gather_then_release():
    """All cores arrive at cycle 0; the dump must show the 4-cycle wave:
    row gather, column gather, column release, row release -- one cycle
    apart -- with the cores resuming right after the row release."""
    tracer, releases = run_2x2_episode()
    changes = parse_vcd(to_vcd(tracer.events))

    h0 = rise_times(changes, "glnet.SglineH0.level")
    h1 = rise_times(changes, "glnet.SglineH1.level")
    sv = rise_times(changes, "glnet.SglineV.level")
    mv = rise_times(changes, "glnet.MglineV.level")
    m0 = rise_times(changes, "glnet.MglineH0.level")
    m1 = rise_times(changes, "glnet.MglineH1.level")
    assert h0 and h0 == h1                 # both rows gather together...
    t = h0[0]
    assert sv == [t + 1]                   # ...then the column gathers,
    assert mv == [t + 2]                   # the column releases,
    assert m0 == m1 == [t + 3]             # and the rows release.
    assert set(releases.values()) == {t + 4}


def test_episode_scsma_count_bus():
    """The gather lines carry the S-CSMA transmitter count.  The column
    master's own row state is local, so on a 2-row mesh exactly the other
    row's master transmits on SglineV: receivers decode 1."""
    tracer, _ = run_2x2_episode()
    changes = parse_vcd(to_vcd(tracer.events))
    counts = [v for _, v in changes["glnet.SglineV.count"]]
    assert max(counts) == 1
    # Each row gather line saw its single slave transmit.
    assert max(v for _, v in changes["glnet.SglineH0.count"]) >= 1
