"""Observability overhead guard: tracing off must cost nothing and change
nothing; tracing on must change nothing but the metrics snapshot."""

from helpers import make_chip, run_uniform
from repro.cpu import isa
from repro.exec.spec import RunSpec
from repro.experiments.fig5 import run_fig5
from repro.obs import NULL_TRACER, Observability
from repro.workloads.synthetic import SyntheticBarrierWorkload


def result_modulo_metrics(result):
    d = result.to_dict()
    d.pop("metrics")
    return d


# ---------------------------------------------------------------------- #
# Disabled: the null tracer everywhere, zero events, zero metrics
# ---------------------------------------------------------------------- #
def test_untraced_chip_has_null_streams():
    chip = make_chip(4, "gl")
    assert chip.obs is None
    assert chip.engine.tracer is NULL_TRACER
    assert not chip.engine.tracer.enabled
    for tile in chip.tiles:
        assert tile.core.tracer is NULL_TRACER
        assert tile.core.metrics is None
        assert tile.core.flight is None
    run_uniform(chip, lambda c: iter([isa.BarrierOp()]))
    # Nothing was ever buffered anywhere -- the null tracer has no store.
    assert not hasattr(NULL_TRACER, "events")


def test_untraced_result_has_empty_metrics():
    chip = make_chip(4, "gl")
    res = run_uniform(chip, lambda c: iter([isa.BarrierOp()]))
    assert res.metrics == {}


# ---------------------------------------------------------------------- #
# Enabled: identical simulation, identical result (modulo metrics)
# ---------------------------------------------------------------------- #
def test_traced_run_matches_untraced_modulo_metrics():
    spec = RunSpec.make(SyntheticBarrierWorkload(iterations=3), "gl",
                        num_cores=8)
    untraced = spec.execute()
    obs = Observability.full(8)
    traced = spec.execute(obs=obs)
    assert result_modulo_metrics(traced) == result_modulo_metrics(untraced)
    assert untraced.metrics == {}
    assert traced.metrics["counters"]["gline.episodes"] == \
        traced.num_barriers()
    assert len(obs.tracer) > 0


def test_traced_run_round_trips_through_cache_format():
    spec = RunSpec.make(SyntheticBarrierWorkload(iterations=2), "gl",
                        num_cores=4)
    traced = spec.execute(obs=Observability.full(4))
    clone = type(traced).from_dict(traced.to_dict())
    assert clone.to_dict() == traced.to_dict()
    assert clone.metrics == traced.metrics


# ---------------------------------------------------------------------- #
# The golden smoke point: Figure 5's GL column is 13 cycles/barrier with
# or without observability attached (results/fig5.txt)
# ---------------------------------------------------------------------- #
def test_fig5_gl_point_matches_golden():
    fig = run_fig5(core_counts=(4,), impls=("gl",), iterations=40)
    assert fig.cycles_per_barrier["gl"][4] == 13.0


def test_fig5_gl_point_unchanged_by_tracing():
    spec = RunSpec.make(SyntheticBarrierWorkload(iterations=40), "gl",
                        num_cores=4)
    untraced = spec.execute()
    traced = spec.execute(obs=Observability.full(4))
    assert untraced.total_cycles / untraced.num_barriers() == 13.0
    assert traced.total_cycles == untraced.total_cycles
    assert result_modulo_metrics(traced) == result_modulo_metrics(untraced)
