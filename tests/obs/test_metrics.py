"""Metric-stream tests: counters, gauges, histogram buckets, merge, export."""

import csv
import io
import json

import pytest

from repro.obs import DEFAULT_EDGES, Histogram, MetricsRegistry


# ---------------------------------------------------------------------- #
# Counters and gauges
# ---------------------------------------------------------------------- #
def test_counter_inc():
    m = MetricsRegistry()
    c = m.counter("hits")
    c.inc()
    c.inc(4)
    assert m.counter("hits").value == 5          # get-or-create returns same


def test_gauge_tracks_peak():
    m = MetricsRegistry()
    g = m.gauge("depth")
    g.set(3)
    g.set(9)
    g.set(2)
    assert g.value == 2
    assert g.peak == 9


# ---------------------------------------------------------------------- #
# Histogram bucket semantics
# ---------------------------------------------------------------------- #
def test_default_edges_are_powers_of_two():
    assert DEFAULT_EDGES[0] == 1
    assert DEFAULT_EDGES[-1] == 65536
    assert all(b == 2 * a for a, b in zip(DEFAULT_EDGES, DEFAULT_EDGES[1:]))


def test_histogram_bucket_edges():
    h = Histogram("lat", edges=(1, 10, 100))
    # bucket i holds values <= edges[i] (bisect_left on edges); the last
    # bucket is the overflow bucket.
    for v in (0, 1, 5, 10, 99, 100, 101):
        h.record(v)
    assert h.counts == [2, 2, 2, 1]    # <=1, <=10, <=100, overflow
    assert h.count == 7
    assert h.min == 0 and h.max == 101


def test_histogram_mean_and_percentile():
    h = Histogram("lat", edges=(10, 20, 30))
    for v in (5, 15, 25):
        h.record(v)
    assert h.mean == pytest.approx(15.0)
    assert h.percentile(0) <= h.percentile(50) <= h.percentile(100)


def test_histogram_rejects_bad_edges():
    with pytest.raises(ValueError):
        Histogram("x", edges=(3, 2, 1))
    with pytest.raises(ValueError):
        Histogram("x", edges=(1, 1, 2))
    with pytest.raises(ValueError):
        Histogram("x", edges=())


def test_histogram_to_dict_shape():
    h = Histogram("lat", edges=(1, 2))
    h.record(2)
    d = h.to_dict()
    assert set(d) == {"edges", "counts", "count", "sum", "min", "max"}
    assert d["edges"] == [1, 2]
    assert sum(d["counts"]) == d["count"] == 1


# ---------------------------------------------------------------------- #
# Registry: merge + export
# ---------------------------------------------------------------------- #
def test_merge_adds_counters_and_histograms():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("n").inc(2)
    b.counter("n").inc(3)
    a.histogram("h", edges=(1, 2)).record(1)
    b.histogram("h", edges=(1, 2)).record(2)
    b.gauge("g").set(7)
    a.merge(b)
    assert a.counter("n").value == 5
    assert a.histogram("h", edges=(1, 2)).count == 2
    assert a.gauge("g").value == 7


def test_merge_rejects_mismatched_edges():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.histogram("h", edges=(1, 2))
    b.histogram("h", edges=(1, 3))
    with pytest.raises(ValueError):
        a.merge(b)


def test_to_dict_snapshot_sorted():
    m = MetricsRegistry()
    m.counter("z").inc()
    m.counter("a").inc(2)
    d = m.to_dict()
    assert set(d) == {"counters", "gauges", "histograms"}
    assert list(d["counters"]) == ["a", "z"]
    assert d["counters"] == {"a": 2, "z": 1}


def test_to_json_round_trips(tmp_path):
    m = MetricsRegistry()
    m.counter("c").inc()
    m.histogram("h", edges=(1,)).record(5)
    path = tmp_path / "metrics.json"
    text = m.to_json(path)
    assert path.read_text() == text + "\n"
    assert json.loads(text) == m.to_dict()


def test_to_csv_rows():
    m = MetricsRegistry()
    m.counter("hits").inc(3)
    m.gauge("depth").set(2)
    m.histogram("lat", edges=(1, 2)).record(2)
    rows = list(csv.reader(io.StringIO(m.to_csv())))
    assert rows[0] == ["name", "type", "field", "value"]
    body = {(r[0], r[1], r[2]): r[3] for r in rows[1:]}
    assert body[("hits", "counter", "value")] == "3"
    assert ("lat", "histogram", "le_2") in body
    assert ("lat", "histogram", "overflow") in body
