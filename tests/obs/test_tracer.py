"""Ring-buffer tracer tests: wraparound, accounting, filters, aliases."""

import pytest

from repro.obs import (
    DEFAULT_CAPACITY,
    NULL_TRACER,
    ListTracer,
    RingTracer,
    TraceEvent,
)


def fill(tr, n, kind="k", source="s"):
    for i in range(n):
        tr.emit(i, source, kind, i=i)


# ---------------------------------------------------------------------- #
# Ring semantics
# ---------------------------------------------------------------------- #
def test_ring_keeps_newest_on_overflow():
    tr = RingTracer(capacity=4)
    fill(tr, 10)
    assert len(tr) == 4
    assert [e.time for e in tr.events] == [6, 7, 8, 9]
    assert tr.dropped == 6
    assert tr.emitted == 10


def test_accounting_balances():
    tr = RingTracer(capacity=3, kinds={"keep"})
    for i in range(5):
        tr.emit(i, "s", "keep")
    for i in range(4):
        tr.emit(i, "s", "reject")
    acc = tr.accounting()
    assert acc == {"retained": 3, "emitted": 5, "dropped": 2, "filtered": 4}
    assert acc["emitted"] == acc["retained"] + acc["dropped"]


def test_unbounded_capacity_none():
    tr = RingTracer(capacity=None)
    fill(tr, 1000)
    assert len(tr) == 1000
    assert tr.dropped == 0


def test_capacity_below_one_rejected():
    with pytest.raises(ValueError):
        RingTracer(capacity=0)
    with pytest.raises(ValueError):
        RingTracer(capacity=-3)


def test_clear_resets_counters():
    tr = RingTracer(capacity=2, kinds={"a"})
    tr.emit(1, "s", "a")
    tr.emit(2, "s", "b")
    tr.clear()
    assert tr.events == []
    assert tr.accounting() == {"retained": 0, "emitted": 0,
                               "dropped": 0, "filtered": 0}


# ---------------------------------------------------------------------- #
# Filters
# ---------------------------------------------------------------------- #
def test_kind_and_source_filters():
    tr = RingTracer(kinds={"load"}, sources={"core0"})
    tr.emit(1, "core0", "load")     # accepted
    tr.emit(2, "core1", "load")     # wrong source
    tr.emit(3, "core0", "store")    # wrong kind
    assert [e.time for e in tr.events] == [1]
    assert tr.filtered == 2


def test_iteration_and_queries():
    tr = RingTracer()
    tr.emit(5, "a", "x", v=1)
    tr.emit(6, "b", "y", v=2)
    assert [e.kind for e in tr] == ["x", "y"]
    assert [e.source for e in tr.of_source("b")] == ["b"]
    assert tr.of_kind("x")[0].detail == {"v": 1}


def test_event_str_and_dict():
    e = TraceEvent(7, "glnet", "gline.arrive", {"core": 3, "arrived": 1})
    assert e.to_dict() == {"time": 7, "source": "glnet",
                           "kind": "gline.arrive",
                           "detail": {"core": 3, "arrived": 1}}
    assert str(e).startswith("@7 glnet gline.arrive")


# ---------------------------------------------------------------------- #
# ListTracer compatibility alias (the old unbounded tracer, now capped)
# ---------------------------------------------------------------------- #
def test_list_tracer_is_bounded_by_default():
    tr = ListTracer()
    assert isinstance(tr, RingTracer)
    fill(tr, DEFAULT_CAPACITY + 5)
    assert len(tr) == DEFAULT_CAPACITY
    assert tr.dropped == 5


def test_list_tracer_opt_out_unbounded():
    tr = ListTracer(capacity=None)
    fill(tr, DEFAULT_CAPACITY + 5)
    assert len(tr) == DEFAULT_CAPACITY + 5


def test_list_tracer_keyword_compat():
    # Old call shape: ListTracer(kinds={...}) as first positional arg.
    tr = ListTracer({"load"})
    tr.emit(1, "a", "load")
    tr.emit(2, "a", "store")
    assert [e.kind for e in tr.events] == ["load"]


def test_null_tracer_disabled_and_silent():
    assert not NULL_TRACER.enabled
    NULL_TRACER.emit(1, "x", "anything", junk=object())  # must not raise
