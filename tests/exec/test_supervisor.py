"""Supervised execution: deadlines, retries, quarantine, chaos, SIGINT.

These tests drive the supervisor through its public surface --
``ParallelRunner(..., timeout=/retries=/keep_going=/journal=/chaos=)`` --
so they cover the wiring in :mod:`repro.exec.parallel` too.
"""

import multiprocessing
import os
import signal
import threading

import pytest

from repro.common.errors import SimulationError
from repro.exec import (ParallelRunner, ResultCache, RunFailureError,
                        RunSpec, SweepJournal, deadline_for)
from repro.exec.supervisor import (CHAOS_DEFAULT_TIMEOUT_S,
                                   DEADLINE_FLOOR_S, QUARANTINED,
                                   SECONDS_PER_EVENT, SIM_ERROR)
from repro.faults import ChaosPlan
from repro.workloads.base import Workload
from repro.workloads.synthetic import SyntheticBarrierWorkload


def _spec(iterations=1, barrier="gl", cores=4, **kw):
    return RunSpec.make(SyntheticBarrierWorkload(iterations=iterations),
                        barrier, num_cores=cores, **kw)


def _specs(n=4):
    return [_spec(iterations=i, barrier=b)
            for i in range(1, n // 2 + 1) for b in ("gl", "dsw")]


class ExplodingWorkload(Workload):
    """Raises deterministically inside the simulation (a sim-error)."""

    name = "Exploding"

    def __init__(self, fuse: int = 0):
        self.fuse = fuse

    def programs(self, chip):
        raise SimulationError(f"boom (fuse={self.fuse})")


def _exploding_spec():
    return RunSpec.make(ExplodingWorkload(), "gl", num_cores=4)


#: A plan whose first-attempt kills are known: seed 0 at kill_rate=0.25
#: strikes dispatch ordinals 1, 2, 5, 9, 11 (of 0..11) on attempt 0 and
#: none of them on attempt 1 (pinned by test_chaos determinism).
KILL_PLAN = ChaosPlan(seed=0, kill_rate=0.25)


# ---------------------------------------------------------------------- #
# Supervised == basic == sequential
# ---------------------------------------------------------------------- #
def test_supervised_results_match_basic(tmp_path):
    specs = _specs(4)
    basic = ParallelRunner(jobs=2, cache=None).run(specs)
    supervised = ParallelRunner(jobs=2, cache=ResultCache(tmp_path),
                                timeout=120).run(specs)
    assert [a.to_dict() for a in basic] == \
        [b.to_dict() for b in supervised]


def test_supervision_knobs_engage_supervised_mode(tmp_path):
    assert not ParallelRunner(jobs=4).supervised
    assert ParallelRunner(jobs=4, timeout=1.0).supervised
    assert ParallelRunner(jobs=4, retries=0).supervised
    assert ParallelRunner(jobs=4, keep_going=True).supervised
    assert ParallelRunner(
        jobs=4, journal=SweepJournal(tmp_path / "j", argv=[])).supervised
    assert ParallelRunner(jobs=4, chaos=KILL_PLAN).supervised
    # A disabled chaos plan engages nothing.
    assert not ParallelRunner(jobs=4, chaos=ChaosPlan()).supervised


def test_supervised_default_retries():
    assert ParallelRunner(jobs=1).retries == 0
    assert ParallelRunner(jobs=1, timeout=5.0).retries == 2
    assert ParallelRunner(jobs=1, timeout=5.0, retries=7).retries == 7


# ---------------------------------------------------------------------- #
# Chaos: crash retry, quarantine, partial results
# ---------------------------------------------------------------------- #
def test_chaos_kills_are_retried_to_success(tmp_path):
    journal = SweepJournal(tmp_path / "j.jsonl", argv=["test"])
    runner = ParallelRunner(jobs=2, cache=ResultCache(tmp_path / "c"),
                            chaos=KILL_PLAN, retries=2, timeout=120,
                            journal=journal)
    specs = _specs(4)            # ordinals 0..3; seed 0 kills 1 and 2
    results = runner.run(specs)
    reference = ParallelRunner(jobs=1, cache=None).run(specs)
    assert [a.to_dict() for a in results] == \
        [b.to_dict() for b in reference]
    counters = runner.metrics.to_dict()["counters"]
    assert counters["exec.crashes"] == 2
    assert counters["exec.retries"] == 2
    assert "exec.quarantined" not in counters
    records = SweepJournal.records(tmp_path / "j.jsonl")
    crashes = [r for r in records if r["type"] == "attempt"
               and r["outcome"] == "crash"]
    assert len(crashes) == 2
    assert len([r for r in records if r["type"] == "done"]) == 4


def test_poison_spec_is_quarantined_keep_going(tmp_path):
    journal = SweepJournal(tmp_path / "j.jsonl", argv=["test"])
    runner = ParallelRunner(jobs=2, cache=ResultCache(tmp_path / "c"),
                            chaos=ChaosPlan(seed=3, kill_rate=1.0),
                            retries=1, keep_going=True, journal=journal)
    specs = _specs(2)
    results = runner.run(specs)
    assert results == [None, None]
    assert len(runner.failures) == 2
    assert all(f.kind == QUARANTINED for f in runner.failures)
    assert sorted(f.index for f in runner.failures) == [0, 1]
    assert all(f.attempts == 2 for f in runner.failures)  # 1 + 1 retry
    assert runner.metrics.to_dict()["counters"]["exec.quarantined"] == 2
    quarantined = [r for r in
                   SweepJournal.records(tmp_path / "j.jsonl")
                   if r["type"] == "quarantined"]
    assert len(quarantined) == 2
    assert all(r["last"] == "crash" for r in quarantined)


def test_failure_without_keep_going_raises_run_failure_error(tmp_path):
    runner = ParallelRunner(jobs=1, cache=None, retries=0,
                            chaos=ChaosPlan(seed=11, kill_rate=1.0))
    with pytest.raises(RunFailureError, match="quarantined") as excinfo:
        runner.run([_spec(iterations=1)])
    (failure,) = excinfo.value.failures
    assert failure.kind == QUARANTINED
    assert failure.index == 0
    assert "crash" in failure.detail


def test_partial_results_cached_before_abort(tmp_path):
    """With keep_going off, completed specs still land in the cache, so
    a rerun only re-simulates the failed one."""
    cache = ResultCache(tmp_path)
    # seed 0/0.25 kills ordinals 1, 2, 5, 9, 11; retries=0 quarantines
    # the first strike.  Serial dispatch => ordinal 0 completes first.
    runner = ParallelRunner(jobs=1, cache=cache, chaos=KILL_PLAN,
                            retries=0)
    specs = _specs(4)
    with pytest.raises(RunFailureError):
        runner.run(specs)
    assert specs[0].key() in cache
    rerun = ParallelRunner(jobs=1, cache=cache)
    rerun.run(specs)
    assert rerun.hits >= 1


# ---------------------------------------------------------------------- #
# Timeouts
# ---------------------------------------------------------------------- #
def test_hang_is_killed_at_deadline_and_retried(tmp_path):
    # Hang on every first attempt, never on retries: rate 1.0 would hang
    # forever, so use a plan that hangs attempt 0 deterministically via
    # probing.
    plan = None
    for seed in range(200):
        candidate = ChaosPlan(seed=seed, hang_rate=0.5, hang_seconds=60)
        if candidate.roll("0", 0) == "hang" \
                and candidate.roll("0", 1) is None:
            plan = candidate
            break
    assert plan is not None
    journal = SweepJournal(tmp_path / "j.jsonl", argv=["test"])
    runner = ParallelRunner(jobs=1, cache=None, chaos=plan, retries=1,
                            timeout=1.0, journal=journal,
                            backoff_base=0.01)
    (result,) = runner.run([_spec(iterations=1)])
    reference = ParallelRunner(jobs=1, cache=None).run_one(
        _spec(iterations=1))
    assert result.to_dict() == reference.to_dict()
    counters = runner.metrics.to_dict()["counters"]
    assert counters["exec.timeouts"] == 1
    assert counters["exec.retries"] == 1
    outcomes = [r["outcome"] for r in
                SweepJournal.records(tmp_path / "j.jsonl")
                if r["type"] == "attempt"]
    assert outcomes == ["timeout", "ok"]


def test_deadline_for_precedence():
    explicit = deadline_for(_spec(max_events=100), 3.5)
    assert explicit == 3.5
    derived = deadline_for(_spec(max_events=100), None)
    assert derived == DEADLINE_FLOOR_S + 100 * SECONDS_PER_EVENT
    assert deadline_for(_spec(), None) is None


def test_hang_chaos_defaults_a_timeout():
    runner = ParallelRunner(jobs=1,
                            chaos=ChaosPlan(seed=0, hang_rate=0.5))
    runner._run_supervised([], [])      # force supervisor creation
    assert runner._supervisor.timeout == CHAOS_DEFAULT_TIMEOUT_S


# ---------------------------------------------------------------------- #
# Sim errors: deterministic, never retried
# ---------------------------------------------------------------------- #
def test_sim_error_fails_fast_without_retry(tmp_path):
    journal = SweepJournal(tmp_path / "j.jsonl", argv=["test"])
    runner = ParallelRunner(jobs=1, cache=None, retries=3,
                            keep_going=True, journal=journal)
    good = _spec(iterations=1)
    results = runner.run([_exploding_spec(), good])
    assert results[0] is None
    assert results[1].to_dict() == \
        ParallelRunner(jobs=1, cache=None).run_one(good).to_dict()
    (failure,) = runner.failures
    assert failure.kind == SIM_ERROR
    assert failure.attempts == 1                 # no retries burned
    assert "SimulationError" in failure.detail
    counters = runner.metrics.to_dict()["counters"]
    assert counters["exec.sim_errors"] == 1
    assert "exec.retries" not in counters


def test_unsupervised_sim_error_keeps_original_exception_type():
    runner = ParallelRunner(jobs=1, cache=None)
    with pytest.raises(SimulationError, match="boom"):
        runner.run([_exploding_spec()])


# ---------------------------------------------------------------------- #
# Determinism: same seed => same journal content
# ---------------------------------------------------------------------- #
def test_same_chaos_seed_same_journal(tmp_path):
    def sweep(tag):
        journal = SweepJournal(tmp_path / f"{tag}.jsonl", argv=["test"])
        runner = ParallelRunner(
            jobs=2, cache=ResultCache(tmp_path / f"cache-{tag}"),
            chaos=KILL_PLAN, retries=2, timeout=120, journal=journal,
            backoff_base=0.01)
        results = runner.run(_specs(4))
        journal.close()
        lines = (tmp_path / f"{tag}.jsonl").read_text().splitlines()
        # Line *order* is completion order (racy); content is not.
        return [r.to_dict() for r in results], sorted(lines)

    results_a, journal_a = sweep("a")
    results_b, journal_b = sweep("b")
    assert results_a == results_b
    assert journal_a == journal_b
    assert any('"outcome": "crash"' in line for line in journal_a)


# ---------------------------------------------------------------------- #
# Graceful degradation and clean interrupts
# ---------------------------------------------------------------------- #
def test_pool_shrinks_on_crashes(tmp_path):
    runner = ParallelRunner(jobs=4, cache=None, chaos=KILL_PLAN,
                            retries=2, backoff_base=0.01)
    runner.run(_specs(4))        # ordinals 0..3: kills at 1 and 2
    width = runner.metrics.to_dict()["gauges"]["exec.pool.width"]
    assert width["peak"] == 4
    assert width["value"] == 2


def test_sigint_drains_flushes_and_reraises(tmp_path):
    journal = SweepJournal(tmp_path / "j.jsonl", argv=["test"])
    runner = ParallelRunner(jobs=2, cache=ResultCache(tmp_path / "c"),
                            timeout=60, journal=journal)
    specs = [_spec(iterations=40, barrier=b, cores=16)
             for b in ("csw", "dsw", "gl")] * 2
    timer = threading.Timer(
        1.0, lambda: os.kill(os.getpid(), signal.SIGINT))
    timer.start()
    try:
        with pytest.raises(KeyboardInterrupt):
            runner.run(specs)
    finally:
        timer.cancel()
    assert not multiprocessing.active_children()     # no zombies
    journal.interrupted()        # CLI layer would do this; idempotent
    journal.close()
    types = [r["type"] for r in
             SweepJournal.records(tmp_path / "j.jsonl")]
    assert types.count("interrupted") == 1


def test_keep_going_summary_mentions_failures(tmp_path):
    runner = ParallelRunner(jobs=1, cache=None, retries=0,
                            keep_going=True)
    runner.run([_exploding_spec()])
    assert "1 failed" in runner.summary()
