"""Round-trip serialization tests for the cache / worker-IPC format.

The contract: ``to_dict`` -> ``from_dict`` -> ``to_dict`` is a fixed
point, for :class:`RunResult`, :class:`StatsRegistry` (including the
enum-keyed counters and :class:`BarrierSample` lists) and
:class:`CMPConfig` (including every nested sub-config).  The result cache
and the worker pool both depend on this being lossless.
"""

import json
from dataclasses import replace

import pytest

from repro.chip.results import RunResult
from repro.common.errors import ConfigError
from repro.common.params import (CacheConfig, CMPConfig, CoreConfig,
                                 GLineConfig, NocConfig)
from repro.common.stats import (BarrierSample, CycleCat, MsgCat,
                                StatsRegistry)
from repro.experiments.runner import run_benchmark
from repro.workloads.synthetic import SyntheticBarrierWorkload


def _populated_registry() -> StatsRegistry:
    reg = StatsRegistry(4)
    reg.bump("l1.hits", 17)
    reg.bump("dir.gets")
    reg.add_cycles(0, CycleCat.BUSY, 100)
    reg.add_cycles(0, CycleCat.BARRIER, 40)
    reg.add_cycles(3, CycleCat.LOCK, 7)
    reg.add_message(MsgCat.REQUEST, flits=1, hops=3)
    reg.add_message(MsgCat.REPLY, flits=2, hops=3)
    reg.add_message(MsgCat.COHERENCE, flits=1, hops=1)
    reg.add_barrier(BarrierSample(barrier_id=0, first_arrival=10,
                                  last_arrival=25, release=29))
    reg.add_barrier(BarrierSample(barrier_id=1, first_arrival=40,
                                  last_arrival=41, release=45))
    reg.gline_toggles = 12
    return reg


# ---------------------------------------------------------------------- #
# StatsRegistry
# ---------------------------------------------------------------------- #
def test_stats_registry_round_trip_is_fixed_point():
    reg = _populated_registry()
    d1 = reg.to_dict()
    d2 = StatsRegistry.from_dict(d1).to_dict()
    assert d1 == d2


def test_stats_registry_round_trip_preserves_aggregates():
    reg = _populated_registry()
    back = StatsRegistry.from_dict(reg.to_dict())
    assert back.num_cores == reg.num_cores
    assert dict(back.counters) == dict(reg.counters)
    assert back.cycle_breakdown() == reg.cycle_breakdown()
    assert back.message_breakdown() == reg.message_breakdown()
    assert back.total_messages() == reg.total_messages()
    assert back.num_barriers() == reg.num_barriers()
    assert back.avg_barrier_latency() == reg.avg_barrier_latency()
    assert back.avg_barrier_span() == reg.avg_barrier_span()
    assert dict(back.flits) == dict(reg.flits)
    assert dict(back.hop_flits) == dict(reg.hop_flits)
    assert back.gline_toggles == reg.gline_toggles
    assert back.snapshot() == reg.snapshot()


def test_stats_registry_enum_keys_survive_json():
    """Keys are stored by enum value, so a JSON round trip is transparent
    (this is exactly what the on-disk cache does)."""
    reg = _populated_registry()
    via_json = json.loads(json.dumps(reg.to_dict()))
    back = StatsRegistry.from_dict(via_json)
    assert back.to_dict() == reg.to_dict()
    assert all(isinstance(cat, MsgCat) for cat in back.messages)
    assert all(isinstance(cat, CycleCat)
               for per_core in back.cycles for cat in per_core)


def test_stats_registry_counters_stay_bumpable_after_round_trip():
    back = StatsRegistry.from_dict(_populated_registry().to_dict())
    back.bump("new.counter")          # defaultdict semantics preserved
    back.add_cycles(1, CycleCat.READ, 5)
    back.add_message(MsgCat.REQUEST, flits=1, hops=1)
    assert back.counters["new.counter"] == 1


def test_barrier_sample_round_trip():
    sample = BarrierSample(barrier_id=7, first_arrival=3, last_arrival=9,
                           release=13)
    back = BarrierSample.from_dict(sample.to_dict())
    assert back == sample
    assert back.latency_after_last_arrival == 4
    assert back.span == 10


# ---------------------------------------------------------------------- #
# CMPConfig
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("cfg", [
    CMPConfig(),
    CMPConfig.for_cores(16),
    CMPConfig.for_cores(8).with_(memory_latency=123),
    CMPConfig.for_cores(4).with_(gline=GLineConfig(entry_overhead=0,
                                                   num_barriers=2)),
    CMPConfig.for_cores(16).with_(
        noc=NocConfig(rows=4, cols=4, model="vct", vct_buffer_flits=2,
                      model_contention=False)),
])
def test_cmp_config_round_trip_is_fixed_point(cfg):
    d1 = cfg.to_dict()
    rebuilt = CMPConfig.from_dict(d1)
    assert rebuilt == cfg
    assert rebuilt.to_dict() == d1
    # JSON-transparency (the cache key serializes this dict).
    assert CMPConfig.from_dict(json.loads(json.dumps(d1))) == cfg


@pytest.mark.parametrize("sub_cls,kwargs", [
    (CacheConfig, dict(size_bytes=8192, assoc=2, latency=3,
                       extra_latency=1)),
    (NocConfig, dict(rows=2, cols=3, router_latency=5)),
    (GLineConfig, dict(entry_overhead=4, max_transmitters=9)),
    (CoreConfig, dict(freq_ghz=2.5, issue_width=1)),
])
def test_sub_config_round_trip(sub_cls, kwargs):
    cfg = sub_cls(**kwargs)
    assert sub_cls.from_dict(cfg.to_dict()) == cfg


def test_sub_config_from_dict_rejects_unknown_fields():
    with pytest.raises(ConfigError, match="unknown fields"):
        NocConfig.from_dict({"rows": 2, "cols": 2, "bogus": 1})


def test_config_from_dict_still_validates():
    bad = CMPConfig().to_dict()
    bad["num_cores"] = 7          # mesh 4x8 no longer matches
    with pytest.raises(ConfigError):
        CMPConfig.from_dict(bad)


# ---------------------------------------------------------------------- #
# RunResult (synthetic and from a real run)
# ---------------------------------------------------------------------- #
def test_run_result_round_trip_is_fixed_point():
    result = RunResult(total_cycles=1234, barrier_name="GL", num_cores=4,
                       stats=_populated_registry(), events_executed=99)
    d1 = result.to_dict()
    d2 = RunResult.from_dict(d1).to_dict()
    assert d1 == d2


def test_run_result_round_trip_from_real_run():
    run = run_benchmark(SyntheticBarrierWorkload(iterations=3), "gl",
                        num_cores=4)
    back = RunResult.from_dict(json.loads(json.dumps(run.to_dict())))
    assert back.to_dict() == run.to_dict()
    assert back.total_cycles == run.total_cycles
    assert back.barrier_name == run.barrier_name
    assert back.events_executed == run.events_executed
    assert back.cycle_breakdown() == run.cycle_breakdown()
    assert back.messages() == run.messages()
    assert back.num_barriers() == run.num_barriers()
    assert back.avg_barrier_latency() == run.avg_barrier_latency()
    assert back.barrier_period() == run.barrier_period()
    assert back.summary() == run.summary()
