"""Executor metric streams and the RunResult metrics round trip."""

from repro.chip.results import RunResult
from repro.exec import ParallelRunner, ResultCache, RunSpec
from repro.workloads.synthetic import SyntheticBarrierWorkload


def spec(iterations=1):
    return RunSpec.make(SyntheticBarrierWorkload(iterations=iterations),
                        "gl", num_cores=4)


def test_runner_publishes_hit_miss_counters(tmp_path):
    runner = ParallelRunner(jobs=1, cache=ResultCache(tmp_path))
    runner.run([spec()])                     # cold: miss
    runner.run([spec(), spec(2)])            # one hit, one miss
    assert (runner.hits, runner.misses) == (1, 2)
    counters = runner.metrics.to_dict()["counters"]
    assert counters["exec.cache.hits"] == runner.hits == 1
    assert counters["exec.cache.misses"] == runner.misses == 2


def test_uncached_runner_counts_only_misses():
    runner = ParallelRunner(jobs=1, cache=None)
    runner.run([spec()])
    assert runner.metrics.to_dict()["counters"] == {"exec.cache.misses": 1}


def test_cached_result_has_no_metrics_payload(tmp_path):
    """Plain executor runs never attach observability, so the cached dict
    carries an empty metrics field -- hits stay byte-identical."""
    runner = ParallelRunner(jobs=1, cache=ResultCache(tmp_path))
    cold = runner.run_one(spec())
    warm = runner.run_one(spec())
    assert cold.metrics == warm.metrics == {}
    assert cold.to_dict() == warm.to_dict()


def test_run_result_metrics_round_trip():
    base = spec().execute().to_dict()
    base["metrics"] = {"counters": {"x": 1}, "gauges": {}, "histograms": {}}
    clone = RunResult.from_dict(base)
    assert clone.metrics == base["metrics"]
    assert clone.to_dict() == base


def test_run_result_tolerates_pre_obs_cache_entries():
    legacy = spec().execute().to_dict()
    del legacy["metrics"]                    # entry written before repro.obs
    assert RunResult.from_dict(legacy).metrics == {}
