"""SweepJournal: append-only manifest, resume scanning, error paths."""

import json

import pytest

from repro.exec import JournalError, SweepJournal


def test_begin_record_captures_argv(tmp_path):
    path = tmp_path / "j.jsonl"
    journal = SweepJournal(path, argv=["fig5", "--jobs", "2"])
    journal.close()
    records = SweepJournal.records(path)
    assert records[0]["type"] == "begin"
    assert records[0]["argv"] == ["fig5", "--jobs", "2"]
    assert SweepJournal.load_argv(path) == ["fig5", "--jobs", "2"]


def test_lifecycle_records_and_completed_set(tmp_path):
    path = tmp_path / "j.jsonl"
    journal = SweepJournal(path, argv=["x"])
    journal.hit("k-hit")
    journal.attempt("k-done", 0, "crash", detail="worker died")
    journal.attempt("k-done", 1, "ok")
    journal.done("k-done", attempts=2)
    journal.quarantine("k-bad", attempts=3, last="timeout")
    journal.close()
    assert journal.completed == {"k-hit", "k-done"}
    assert journal.quarantined == {"k-bad"}
    types = [r["type"] for r in SweepJournal.records(path)]
    assert types == ["begin", "hit", "attempt", "attempt", "done",
                     "quarantined"]
    assert SweepJournal.completed_keys(path) == {"k-hit", "k-done"}


def test_reopening_loads_history_and_marks_resume(tmp_path):
    path = tmp_path / "j.jsonl"
    first = SweepJournal(path, argv=["fig5"])
    first.done("k1", attempts=1)
    first.close()
    second = SweepJournal(path)
    assert second.completed == {"k1"}
    second.done("k2", attempts=1)
    second.close()
    types = [r["type"] for r in SweepJournal.records(path)]
    assert types == ["begin", "done", "resume", "done"]
    # The original argv survives the resume session.
    assert SweepJournal.load_argv(path) == ["fig5"]


def test_interrupted_is_idempotent_per_session(tmp_path):
    path = tmp_path / "j.jsonl"
    journal = SweepJournal(path, argv=["x"])
    journal.interrupted()
    journal.interrupted()            # supervisor + CLI both report
    journal.close()
    types = [r["type"] for r in SweepJournal.records(path)]
    assert types.count("interrupted") == 1


def test_malformed_journal_raises(tmp_path):
    path = tmp_path / "j.jsonl"
    path.write_text('{"type": "begin", "argv": []}\nnot json\n')
    with pytest.raises(JournalError, match="malformed"):
        SweepJournal.load_argv(path)


def test_journal_without_begin_is_not_resumable(tmp_path):
    path = tmp_path / "j.jsonl"
    path.write_text(json.dumps({"type": "done", "key": "k",
                                "attempts": 1}) + "\n")
    with pytest.raises(JournalError, match="begin"):
        SweepJournal.load_argv(path)


def test_missing_journal_raises(tmp_path):
    with pytest.raises(JournalError):
        SweepJournal.load_argv(tmp_path / "absent.jsonl")
