"""The ``repro cache`` subcommand and cache maintenance helpers."""

import json

from repro.cli import main
from repro.exec import ResultCache, RunSpec, code_fingerprint
from repro.workloads.synthetic import SyntheticBarrierWorkload


def _seed_entry(directory):
    """One genuine (current-code) cache entry; returns its key."""
    spec = RunSpec.make(SyntheticBarrierWorkload(iterations=1), "gl",
                        num_cores=4)
    cache = ResultCache(directory)
    cache.put(spec.key(), spec.fingerprint(), spec.execute().to_dict())
    return spec.key()


def _plant_stale_entry(directory, code="0" * 64, key="cd" + "5" * 62):
    """A well-formed entry from a different code version."""
    path = directory / key[:2] / f"{key}.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps({"key": key,
                                "fingerprint": {"code": code},
                                "result": {"total_cycles": 1}}))
    return key


def _plant_corrupt_entry(directory):
    path = directory / "ef" / ("ef" + "6" * 62 + ".json")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("{torn")
    return path


def test_cache_stats_reports_inventory(tmp_path, capsys):
    _seed_entry(tmp_path)
    _plant_stale_entry(tmp_path)
    _plant_corrupt_entry(tmp_path)
    rc = main(["cache", "stats", "--cache-dir", str(tmp_path)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "entries: 3" in out
    assert "corrupt: 1" in out
    assert f"{code_fingerprint()[:16]}: 1 entries  (current)" in out
    stale_lines = [l for l in out.splitlines() if "0000000000000000" in l]
    assert stale_lines == ["  0000000000000000: 1 entries"]


def test_cache_prune_keeps_only_current_code(tmp_path, capsys):
    key = _seed_entry(tmp_path)
    _plant_stale_entry(tmp_path)
    _plant_corrupt_entry(tmp_path)
    rc = main(["cache", "prune", "--cache-dir", str(tmp_path)])
    assert rc == 0
    assert "pruned 2 stale entries" in capsys.readouterr().out
    cache = ResultCache(tmp_path)
    assert len(cache) == 1
    assert key in cache


def test_cache_prune_dry_run_reports_without_deleting(tmp_path, capsys):
    key = _seed_entry(tmp_path)
    stale = _plant_stale_entry(tmp_path)
    _plant_corrupt_entry(tmp_path)
    rc = main(["cache", "prune", "--dry-run",
               "--cache-dir", str(tmp_path)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "would prune 2 stale entries" in out
    assert "bytes" in out
    assert f"{stale[:2]}/{stale}.json" in out
    # Nothing was deleted: all three entries survive, prune still works.
    assert len(ResultCache(tmp_path)) == 3
    rc = main(["cache", "prune", "--cache-dir", str(tmp_path)])
    assert rc == 0
    assert "pruned 2 stale entries" in capsys.readouterr().out
    assert key in ResultCache(tmp_path)


def test_cache_prune_dry_run_lists_oldest_first(tmp_path, capsys):
    """The eviction order is pinned: oldest mtime first."""
    import os

    newer = _plant_stale_entry(tmp_path, key="ab" + "1" * 62)
    older = _plant_stale_entry(tmp_path, key="ff" + "2" * 62)
    newer_path = tmp_path / newer[:2] / f"{newer}.json"
    older_path = tmp_path / older[:2] / f"{older}.json"
    os.utime(older_path, (1_000_000, 1_000_000))
    os.utime(newer_path, (2_000_000, 2_000_000))
    rc = main(["cache", "prune", "--dry-run",
               "--cache-dir", str(tmp_path)])
    out = capsys.readouterr().out
    assert rc == 0
    # "ff..." is older, so it is listed before "ab..." despite sorting
    # later lexically.
    assert out.index(older) < out.index(newer)
    candidates = ResultCache(tmp_path).prune_candidates()
    assert [p for p, _, _ in candidates] == [older_path, newer_path]


def test_prune_candidates_breaks_mtime_ties_by_path(tmp_path):
    import os

    a = _plant_stale_entry(tmp_path, key="ab" + "1" * 62)
    b = _plant_stale_entry(tmp_path, key="ff" + "2" * 62)
    for key in (a, b):
        os.utime(tmp_path / key[:2] / f"{key}.json",
                 (1_000_000, 1_000_000))
    candidates = ResultCache(tmp_path).prune_candidates()
    assert [p.name for p, _, _ in candidates] == \
        [f"{a}.json", f"{b}.json"]


def test_cache_clear_removes_everything(tmp_path, capsys):
    _seed_entry(tmp_path)
    _plant_stale_entry(tmp_path)
    rc = main(["cache", "clear", "--cache-dir", str(tmp_path)])
    assert rc == 0
    assert "removed 2 entries" in capsys.readouterr().out
    assert len(ResultCache(tmp_path)) == 0


def test_cache_rejects_non_directory_path(tmp_path, capsys):
    bogus = tmp_path / "a-file"
    bogus.write_text("")
    rc = main(["cache", "stats", "--cache-dir", str(bogus)])
    assert rc == 2
    assert "not a directory" in capsys.readouterr().err


def test_stats_on_empty_cache(tmp_path, capsys):
    rc = main(["cache", "stats", "--cache-dir", str(tmp_path / "none")])
    assert rc == 0
    assert "entries: 0" in capsys.readouterr().out
