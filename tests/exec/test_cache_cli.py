"""The ``repro cache`` subcommand and cache maintenance helpers."""

import json

from repro.cli import main
from repro.exec import ResultCache, RunSpec, code_fingerprint
from repro.workloads.synthetic import SyntheticBarrierWorkload


def _seed_entry(directory):
    """One genuine (current-code) cache entry; returns its key."""
    spec = RunSpec.make(SyntheticBarrierWorkload(iterations=1), "gl",
                        num_cores=4)
    cache = ResultCache(directory)
    cache.put(spec.key(), spec.fingerprint(), spec.execute().to_dict())
    return spec.key()


def _plant_stale_entry(directory, code="0" * 64):
    """A well-formed entry from a different code version."""
    key = "cd" + "5" * 62
    path = directory / key[:2] / f"{key}.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps({"key": key,
                                "fingerprint": {"code": code},
                                "result": {"total_cycles": 1}}))
    return key


def _plant_corrupt_entry(directory):
    path = directory / "ef" / ("ef" + "6" * 62 + ".json")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("{torn")
    return path


def test_cache_stats_reports_inventory(tmp_path, capsys):
    _seed_entry(tmp_path)
    _plant_stale_entry(tmp_path)
    _plant_corrupt_entry(tmp_path)
    rc = main(["cache", "stats", "--cache-dir", str(tmp_path)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "entries: 3" in out
    assert "corrupt: 1" in out
    assert f"{code_fingerprint()[:16]}: 1 entries  (current)" in out
    stale_lines = [l for l in out.splitlines() if "0000000000000000" in l]
    assert stale_lines == ["  0000000000000000: 1 entries"]


def test_cache_prune_keeps_only_current_code(tmp_path, capsys):
    key = _seed_entry(tmp_path)
    _plant_stale_entry(tmp_path)
    _plant_corrupt_entry(tmp_path)
    rc = main(["cache", "prune", "--cache-dir", str(tmp_path)])
    assert rc == 0
    assert "pruned 2 stale entries" in capsys.readouterr().out
    cache = ResultCache(tmp_path)
    assert len(cache) == 1
    assert key in cache


def test_cache_clear_removes_everything(tmp_path, capsys):
    _seed_entry(tmp_path)
    _plant_stale_entry(tmp_path)
    rc = main(["cache", "clear", "--cache-dir", str(tmp_path)])
    assert rc == 0
    assert "removed 2 entries" in capsys.readouterr().out
    assert len(ResultCache(tmp_path)) == 0


def test_cache_rejects_non_directory_path(tmp_path, capsys):
    bogus = tmp_path / "a-file"
    bogus.write_text("")
    rc = main(["cache", "stats", "--cache-dir", str(bogus)])
    assert rc == 2
    assert "not a directory" in capsys.readouterr().err


def test_stats_on_empty_cache(tmp_path, capsys):
    rc = main(["cache", "stats", "--cache-dir", str(tmp_path / "none")])
    assert rc == 0
    assert "entries: 0" in capsys.readouterr().out
