"""Concurrent cache writers: atomic replace means no torn reads.

The cache's contract under concurrency (docs/parallel-execution.md) is
*last write wins, every read is whole*: simultaneous ``put()`` calls on
one key may race, but a reader sees either a miss or one complete entry,
never a splice of two.
"""

import multiprocessing

from repro.exec import ResultCache

#: Large enough that a non-atomic write would be visibly torn (well past
#: one pipe/page buffer), small enough to keep the test quick.
_PAD = "x" * 4096
_WRITERS = 4
_ROUNDS = 40
_KEY = "ab" + "0" * 62          # fan-out dir "ab", well-formed key shape


def _writer(directory, writer_id):
    cache = ResultCache(directory)
    for round_no in range(_ROUNDS):
        cache.put(_KEY, {"writer": writer_id},
                  {"writer": writer_id, "round": round_no, "pad": _PAD})


def test_concurrent_puts_no_torn_reads_last_write_wins(tmp_path):
    ctx = multiprocessing.get_context()
    workers = [ctx.Process(target=_writer, args=(tmp_path, i))
               for i in range(_WRITERS)]
    for process in workers:
        process.start()
    cache = ResultCache(tmp_path)
    observed = 0
    try:
        while any(p.is_alive() for p in workers):
            entry = cache.get(_KEY)
            if entry is not None:
                # Whole or nothing: a torn JSON file would come back as
                # None *and be unlinked*; a mixed-writer splice would
                # fail these shape checks.
                assert entry["pad"] == _PAD
                assert 0 <= entry["writer"] < _WRITERS
                assert 0 <= entry["round"] < _ROUNDS
                observed += 1
    finally:
        for process in workers:
            process.join()
    assert all(p.exitcode == 0 for p in workers)
    final = cache.get(_KEY)
    assert final is not None and final["pad"] == _PAD
    assert observed > 0, "reader never overlapped the writers"


def test_concurrent_puts_distinct_keys_all_land(tmp_path):
    keys = [f"{i:02d}" + "f" * 62 for i in range(8)]
    ctx = multiprocessing.get_context()

    workers = [ctx.Process(target=_put_one, args=(tmp_path, key, i))
               for i, key in enumerate(keys)]
    for process in workers:
        process.start()
    for process in workers:
        process.join()
    assert all(p.exitcode == 0 for p in workers)
    cache = ResultCache(tmp_path)
    assert len(cache) == len(keys)
    for i, key in enumerate(keys):
        assert cache.get(key) == {"value": i}


def _put_one(directory, key, value):
    ResultCache(directory).put(key, {}, {"value": value})
