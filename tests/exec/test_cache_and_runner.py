"""Unit tests for the result cache and the parallel runner."""

import json

import pytest

from repro.common.errors import SimulationError
from repro.common.params import CMPConfig
from repro.cpu import isa
from repro.exec import (ParallelRunner, ResultCache, RunSpec, SpecError,
                        code_fingerprint, current_executor, use_executor,
                        workload_fingerprint)
from repro.exec.parallel import _execute_to_dict
from repro.experiments.runner import run_benchmark
from repro.workloads.base import Workload
from repro.workloads.synthetic import SyntheticBarrierWorkload


def _spec(iterations=2, barrier="gl", cores=4, **kw):
    return RunSpec.make(SyntheticBarrierWorkload(iterations=iterations),
                        barrier, num_cores=cores, **kw)


class ExplodingWorkload(Workload):
    """Raises deterministically when the simulation builds it."""

    name = "Exploding"

    def programs(self, chip):
        raise SimulationError("boom")


class ExecutorProbeWorkload(Workload):
    """Fails unless the ambient executor is the serial, uncached one --
    the state the nested-parallelism guard must force inside workers."""

    name = "ExecutorProbe"

    def programs(self, chip):
        ambient = current_executor()
        if ambient.jobs != 1 or ambient.cache is not None:
            raise SimulationError(
                f"worker saw ambient executor jobs={ambient.jobs} "
                f"cache={ambient.cache}")
        return [iter(()) for _ in range(chip.num_cores)]


# ---------------------------------------------------------------------- #
# ResultCache
# ---------------------------------------------------------------------- #
def test_cache_miss_then_hit(tmp_path):
    cache = ResultCache(tmp_path)
    spec = _spec()
    key = spec.key()
    assert cache.get(key) is None
    result = spec.execute().to_dict()
    cache.put(key, spec.fingerprint(), result)
    assert key in cache
    assert cache.get(key) == result
    assert len(cache) == 1


def test_cache_entry_is_self_describing_json(tmp_path):
    cache = ResultCache(tmp_path)
    spec = _spec()
    cache.put(spec.key(), spec.fingerprint(), spec.execute().to_dict())
    (entry_path,) = tmp_path.glob("??/*.json")
    entry = json.loads(entry_path.read_text())
    assert entry["key"] == spec.key()
    assert entry["fingerprint"]["barrier"] == "gl"
    assert entry["fingerprint"]["code"] == code_fingerprint()
    assert entry["result"]["total_cycles"] > 0


def test_cache_corrupt_entry_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    spec = _spec()
    cache.put(spec.key(), spec.fingerprint(), spec.execute().to_dict())
    (entry_path,) = tmp_path.glob("??/*.json")
    entry_path.write_text("{not json")
    assert cache.get(spec.key()) is None
    assert not entry_path.exists()          # removed, not retried forever


@pytest.mark.parametrize("corruption", [
    b"",                                    # empty file (lost write)
    b"\x00\xde\xad\xbe\xef" * 7,            # binary garbage
    b"null",                                # valid JSON, wrong shape
    b"[1, 2, 3]",                           # valid JSON, wrong shape
    b'{"fingerprint": {}}',                 # object missing "result"
    None,                                   # truncated entry (see below)
], ids=["empty", "binary", "null", "list", "no-result", "truncated"])
def test_cache_corruption_variants_are_misses(tmp_path, corruption):
    """Satellite: every flavor of on-disk damage is a miss, never a
    crash, and the bad file is removed so it cannot hurt the next run."""
    cache = ResultCache(tmp_path)
    spec = _spec()
    cache.put(spec.key(), spec.fingerprint(), spec.execute().to_dict())
    (entry_path,) = tmp_path.glob("??/*.json")
    if corruption is None:
        corruption = entry_path.read_bytes()[:50]   # torn mid-write
    entry_path.write_bytes(corruption)
    assert cache.get(spec.key()) is None
    assert not entry_path.exists()
    # The cache heals: the next put/get round-trips normally.
    result = spec.execute().to_dict()
    cache.put(spec.key(), spec.fingerprint(), result)
    assert cache.get(spec.key()) == result


def test_cache_unreadable_entry_is_a_miss(tmp_path):
    """An entry that exists but cannot be opened as a file (here: it is a
    directory) must be a miss too, even though it cannot be unlinked."""
    cache = ResultCache(tmp_path)
    spec = _spec()
    path = tmp_path / spec.key()[:2] / f"{spec.key()}.json"
    path.mkdir(parents=True)
    assert cache.get(spec.key()) is None


def test_cache_clear(tmp_path):
    cache = ResultCache(tmp_path)
    for it in (1, 2, 3):
        spec = _spec(iterations=it)
        cache.put(spec.key(), spec.fingerprint(),
                  spec.execute().to_dict())
    assert len(cache) == 3
    assert cache.clear() == 3
    assert len(cache) == 0


# ---------------------------------------------------------------------- #
# Cache keys
# ---------------------------------------------------------------------- #
def test_key_includes_code_fingerprint():
    assert code_fingerprint() in json.dumps(_spec().fingerprint())
    assert len(code_fingerprint()) == 64


def test_key_differs_for_max_events():
    assert _spec().key() != _spec(max_events=10).key()


def test_workload_fingerprint_rejects_non_primitive_state():
    class Opaque(Workload):
        name = "Opaque"

        def __init__(self):
            self.blob = object()

        def programs(self, chip):
            return [iter(()) for _ in range(chip.num_cores)]

    with pytest.raises(SpecError, match="blob"):
        workload_fingerprint(Opaque())


def test_workload_fingerprint_skips_private_scratch_state():
    wl = SyntheticBarrierWorkload(iterations=2)
    wl._scratch = object()          # e.g. post-build verification state
    assert workload_fingerprint(wl) == workload_fingerprint(
        SyntheticBarrierWorkload(iterations=2))


# ---------------------------------------------------------------------- #
# ParallelRunner
# ---------------------------------------------------------------------- #
def test_runner_preserves_order_and_counts(tmp_path):
    runner = ParallelRunner(jobs=1, cache=ResultCache(tmp_path))
    specs = [_spec(iterations=1), _spec(iterations=2),
             _spec(iterations=1, barrier="dsw")]
    first = runner.run(specs)
    assert [r.barrier_name for r in first] == ["GL", "GL", "DSW"]
    assert (runner.hits, runner.misses) == (0, 3)
    second = runner.run(specs)
    assert (runner.hits, runner.misses) == (3, 3)
    assert [a.to_dict() for a in first] == [b.to_dict() for b in second]


def test_runner_pool_matches_sequential(tmp_path):
    specs = [_spec(iterations=i, barrier=b)
             for i in (1, 2) for b in ("gl", "dsw")]
    seq = ParallelRunner(jobs=1, cache=None).run(specs)
    par = ParallelRunner(jobs=2, cache=None).run(specs)
    assert [a.to_dict() for a in seq] == [b.to_dict() for b in par]


def test_runner_without_cache_always_simulates():
    runner = ParallelRunner(jobs=1, cache=None)
    runner.run([_spec()])
    runner.run([_spec()])
    assert (runner.hits, runner.misses) == (0, 2)
    assert "cache disabled" in runner.summary()


def test_runner_summary_reports_rate(tmp_path):
    runner = ParallelRunner(jobs=3, cache=ResultCache(tmp_path))
    runner.run([_spec()])
    runner.run([_spec()])
    assert "1/2 cache hits (50%)" in runner.summary()
    assert "jobs=3" in runner.summary()


def test_runner_rejects_bad_jobs():
    with pytest.raises(ValueError):
        ParallelRunner(jobs=0)


# ---------------------------------------------------------------------- #
# Association-preserving dispatch: work done before an error is kept
# ---------------------------------------------------------------------- #
def test_pool_error_keeps_completed_results_in_cache(tmp_path):
    cache = ResultCache(tmp_path)
    good = [_spec(iterations=i) for i in (1, 2, 3)]
    bad = RunSpec.make(ExplodingWorkload(), "gl", num_cores=4)
    runner = ParallelRunner(jobs=2, cache=cache)
    with pytest.raises(SimulationError, match="boom"):
        runner.run(good + [bad])
    # Every completed spec was cached the moment it landed, so a rerun
    # without the poison spec is pure cache hits.
    assert all(spec.key() in cache for spec in good)
    rerun = ParallelRunner(jobs=2, cache=cache)
    rerun.run(good)
    assert (rerun.hits, rerun.misses) == (3, 0)


def test_serial_error_keeps_earlier_results_in_cache(tmp_path):
    cache = ResultCache(tmp_path)
    first = _spec(iterations=1)
    bad = RunSpec.make(ExplodingWorkload(), "gl", num_cores=4)
    never_ran = _spec(iterations=2)
    with pytest.raises(SimulationError):
        ParallelRunner(jobs=1, cache=cache).run([first, bad, never_ran])
    assert first.key() in cache
    assert never_ran.key() not in cache     # serial: stopped at the error


# ---------------------------------------------------------------------- #
# Nested-parallelism guard (workers must not fork pools or own the cache)
# ---------------------------------------------------------------------- #
def test_worker_entry_point_forces_serial_uncached_executor(tmp_path):
    spec = RunSpec.make(ExecutorProbeWorkload(), "gl", num_cores=4)
    wide = ParallelRunner(jobs=8, cache=ResultCache(tmp_path))
    with use_executor(wide):
        # The worker entry point must shadow the inherited wide executor;
        # the probe raises if it can still see it.
        result = _execute_to_dict(spec)
        assert current_executor() is wide   # guard is scoped, not global
    assert result["num_cores"] == 4


def test_worker_processes_see_serial_executor(tmp_path):
    specs = [RunSpec.make(ExecutorProbeWorkload(), "gl", num_cores=4),
             RunSpec.make(ExecutorProbeWorkload(), "dsw", num_cores=4)]
    wide = ParallelRunner(jobs=2, cache=ResultCache(tmp_path))
    with use_executor(wide):
        results = wide.run(specs)           # fork inherits `wide`...
    assert [r.num_cores for r in results] == [4, 4]   # ...guard hides it


# ---------------------------------------------------------------------- #
# Ambient executor + run_benchmark routing
# ---------------------------------------------------------------------- #
def test_use_executor_scopes_and_restores(tmp_path):
    default = current_executor()
    runner = ParallelRunner(jobs=1, cache=ResultCache(tmp_path))
    with use_executor(runner) as installed:
        assert installed is runner
        assert current_executor() is runner
        run_benchmark(SyntheticBarrierWorkload(iterations=1), "gl", 4)
    assert current_executor() is default
    assert runner.misses == 1


def test_run_benchmark_served_from_cache_matches_direct(tmp_path):
    direct = run_benchmark(SyntheticBarrierWorkload(iterations=2), "gl", 4)
    runner = ParallelRunner(jobs=1, cache=ResultCache(tmp_path))
    with use_executor(runner):
        cold = run_benchmark(SyntheticBarrierWorkload(iterations=2),
                             "gl", 4)
        warm = run_benchmark(SyntheticBarrierWorkload(iterations=2),
                             "gl", 4)
    assert runner.hits == 1 and runner.misses == 1
    assert cold.to_dict() == warm.to_dict() == direct.to_dict()


def test_run_benchmark_falls_back_for_unspeccable_workloads(tmp_path):
    """A plain list of generators cannot be fingerprinted; it must run
    directly (and not touch the cache)."""
    def program():
        yield isa.BarrierOp()

    runner = ParallelRunner(jobs=1, cache=ResultCache(tmp_path))
    with use_executor(runner):
        result = run_benchmark([program() for _ in range(4)], "gl", 4)
    assert result.num_barriers() == 1
    assert (runner.hits, runner.misses) == (0, 0)
    assert len(ResultCache(tmp_path)) == 0


def test_explicit_config_is_respected_through_executor(tmp_path):
    cfg = CMPConfig.for_cores(4).with_(memory_latency=123)
    runner = ParallelRunner(jobs=1, cache=ResultCache(tmp_path))
    with use_executor(runner):
        run = run_benchmark(SyntheticBarrierWorkload(iterations=1), "gl",
                            4, config=cfg)
    assert run.num_cores == 4
    (entry_path,) = tmp_path.glob("??/*.json")
    entry = json.loads(entry_path.read_text())
    assert entry["fingerprint"]["config"]["memory_latency"] == 123
