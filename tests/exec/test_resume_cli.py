"""``repro resume``: replay a journaled sweep with zero re-simulation."""

import json

from repro.cli import main
from repro.exec import SweepJournal


def test_resume_replays_argv_and_hits_cache(tmp_path, capsys):
    journal = tmp_path / "sweep.jsonl"
    argv = ["fig5", "--iterations", "1", "--jobs", "2",
            "--cache-dir", str(tmp_path / "cache"),
            "--journal", str(journal)]
    assert main(argv) == 0
    first = capsys.readouterr()
    assert "0/12 cache hits" in first.err and "12 simulated" in first.err
    assert len(SweepJournal.completed_keys(journal)) == 12

    assert main(["resume", str(journal)]) == 0
    second = capsys.readouterr()
    assert "resuming: repro fig5" in second.err
    assert "(12 run(s) already completed)" in second.err
    # Zero re-simulation: every spec is a cache hit on replay...
    assert "12/12 cache hits (100%), 0 simulated" in second.err
    # ...and the figure data is byte-identical to the cold run's.
    assert second.out == first.out

    records = SweepJournal.records(journal)
    assert [r["type"] for r in records].count("resume") == 1
    hits = [r for r in records if r["type"] == "hit"]
    assert len(hits) == 12
    assert {r["key"] for r in hits} == SweepJournal.completed_keys(journal)
    # The replay recorded no new attempts (nothing was re-simulated).
    resume_at = [r["type"] for r in records].index("resume")
    assert all(r["type"] == "hit" for r in records[resume_at + 1:])


def test_resume_rejects_missing_or_damaged_journal(tmp_path, capsys):
    assert main(["resume", str(tmp_path / "absent.jsonl")]) == 2
    assert "error:" in capsys.readouterr().err

    headless = tmp_path / "headless.jsonl"
    headless.write_text(json.dumps({"type": "done", "key": "k",
                                    "attempts": 1}) + "\n")
    assert main(["resume", str(headless)]) == 2
    assert "begin" in capsys.readouterr().err


def test_resume_refuses_self_referential_journal(tmp_path, capsys):
    weird = tmp_path / "weird.jsonl"
    weird.write_text(json.dumps({"v": 1, "type": "begin",
                                 "argv": ["resume", "x"]}) + "\n")
    assert main(["resume", str(weird)]) == 2
    assert "not record a resumable command" in capsys.readouterr().err
