"""Determinism property tests: the contract that makes cache keys sound.

A :class:`RunSpec`'s key identifies its result only if the simulation is a
pure function of the spec -- same ``(config, workload, seed)`` must yield
bit-identical ``RunResult.to_dict()`` whether run twice in this process
or once in a subprocess (worker pools replay the same event orderings).
Hypothesis drives chip size, barrier kind and workload shape.
"""

import multiprocessing

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exec.parallel import _execute_to_dict
from repro.exec.spec import RunSpec
from repro.workloads.stress import StressWorkload
from repro.workloads.synthetic import SyntheticBarrierWorkload

#: Barrier kinds with distinct event/controller structures.
BARRIERS = ("gl", "dsw", "csw", "csw-fa", "diss", "tour")

workload_strategy = st.one_of(
    st.builds(SyntheticBarrierWorkload,
              iterations=st.integers(1, 3),
              barriers_per_iter=st.integers(1, 3)),
    st.builds(StressWorkload,
              ops_per_core=st.integers(5, 25),
              seed=st.integers(0, 10)),
)

spec_strategy = st.builds(
    RunSpec.make,
    workload=workload_strategy,
    barrier=st.sampled_from(BARRIERS),
    num_cores=st.sampled_from((1, 2, 4)),
)


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(spec=spec_strategy)
def test_same_spec_twice_in_process_is_bit_identical(spec):
    assert spec.execute().to_dict() == spec.execute().to_dict()


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(spec=spec_strategy)
def test_subprocess_run_matches_in_process_run(spec):
    """A worker process must reproduce the parent's result exactly --
    including event tie-breaks, dict orderings and float aggregates --
    or the cache would conflate different executions under one key."""
    local = spec.execute().to_dict()
    with multiprocessing.get_context().Pool(1) as pool:
        remote = pool.apply(_execute_to_dict, (spec,))
    assert remote == local


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(spec=spec_strategy)
def test_key_is_stable_and_sensitive(spec):
    """Same spec -> same key; any knob change -> different key."""
    assert spec.key() == RunSpec.make(
        workload=spec.workload, barrier=spec.barrier,
        config=spec.config).key()
    other_barrier = "dsw" if spec.barrier != "dsw" else "gl"
    assert RunSpec.make(spec.workload, other_barrier,
                        config=spec.config).key() != spec.key()
    assert RunSpec.make(spec.workload, spec.barrier, config=spec.config,
                        seed=spec.seed + 1).key() != spec.key()
    assert RunSpec.make(spec.workload, spec.barrier,
                        config=spec.config.with_(memory_latency=999)
                        ).key() != spec.key()


def test_key_depends_on_workload_state():
    a = RunSpec.make(SyntheticBarrierWorkload(iterations=2), "gl", 4)
    b = RunSpec.make(SyntheticBarrierWorkload(iterations=3), "gl", 4)
    c = RunSpec.make(SyntheticBarrierWorkload(iterations=2), "gl", 4)
    assert a.key() != b.key()
    assert a.key() == c.key()
