"""Lock algorithm tests: mutual exclusion under real contention."""

import pytest

from helpers import make_chip
from repro.cpu import isa
from repro.sync.locks import TicketLock, TTSLock


def run_critical_sections(chip, lock_addr, per_core=3, lock_alg=None):
    """Every core repeatedly enters a critical section that increments a
    shared (unsynchronized) counter; returns observed violation count."""
    if lock_alg is not None:
        for tile in chip.tiles:
            tile.core.lock_binding = lock_alg
    shared = chip.allocator.alloc_line()
    in_cs = {"count": 0, "violations": 0, "entries": 0}

    def prog(cid):
        for _ in range(per_core):
            yield isa.AcquireLock(lock_addr)
            # Critical section: non-atomic read-modify-write.
            in_cs["count"] += 1
            in_cs["entries"] += 1
            if in_cs["count"] > 1:
                in_cs["violations"] += 1
            value = yield isa.Load(shared)
            yield isa.Compute(7)
            yield isa.Store(shared, value + 1)
            in_cs["count"] -= 1
            yield isa.ReleaseLock(lock_addr)

    chip.run([prog(c) for c in range(chip.num_cores)])
    final = chip.funcmem.load(shared)
    return in_cs, final


@pytest.mark.parametrize("alg", [TTSLock(), TicketLock()])
def test_mutual_exclusion(alg):
    chip = make_chip(4)
    lock = chip.allocator.alloc_line()
    in_cs, final = run_critical_sections(chip, lock, per_core=3,
                                         lock_alg=alg)
    assert in_cs["violations"] == 0
    assert in_cs["entries"] == 12
    # Every read-modify-write was serialized: no lost updates.
    assert final == 12


def test_tts_uncontended_is_cheap():
    chip = make_chip(2)
    lock = chip.allocator.alloc_line()

    def prog():
        yield isa.AcquireLock(lock)
        yield isa.ReleaseLock(lock)

    progs = [None, None]
    progs[0] = prog()
    res = chip.run(progs)
    # One TAS round-trip, no spinning.
    assert res.total_cycles < 1000


def test_lock_released_state():
    chip = make_chip(2)
    lock = chip.allocator.alloc_line()
    in_cs, _ = run_critical_sections(chip, lock, per_core=2)
    assert chip.funcmem.load(lock) == 0  # unlocked at the end


def test_ticket_lock_is_fifo():
    """With a ticket lock, grant order follows ticket order."""
    chip = make_chip(4)
    alg = TicketLock()
    for tile in chip.tiles:
        tile.core.lock_binding = alg
    lock = TicketLock.alloc(chip.allocator)
    order = []

    def prog(cid):
        # Stagger arrival so ticket order is deterministic: 0,1,2,3.
        yield isa.Compute(cid * 2000)
        yield isa.AcquireLock(lock)
        order.append(cid)
        yield isa.Compute(5000)  # hold long enough that others queue
        yield isa.ReleaseLock(lock)

    chip.run([prog(c) for c in range(4)])
    assert order == [0, 1, 2, 3]
