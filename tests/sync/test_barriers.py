"""Barrier correctness tests shared across CSW / DSW / GL.

The fundamental property: no core leaves barrier episode k before every
core has entered it.  Verified by recording per-core entry/exit timestamps
around each BarrierOp.
"""

import pytest

from helpers import make_chip
from repro.cpu import isa

IMPLS = ("csw", "csw-fa", "dsw", "gl")


def run_with_stamps(chip, episodes, delays=None):
    """Run *episodes* barriers per core with optional per-core compute
    delays before each; returns stamps[episode] = (entries, exits)."""
    n = chip.num_cores
    entries = [[None] * n for _ in range(episodes)]
    exits = [[None] * n for _ in range(episodes)]

    def prog(cid):
        for k in range(episodes):
            if delays:
                yield isa.Compute(delays[k][cid])
            entries[k][cid] = chip.engine.now
            yield isa.BarrierOp()
            exits[k][cid] = chip.engine.now

    chip.run([prog(c) for c in range(n)])
    return entries, exits


@pytest.mark.parametrize("impl", IMPLS)
def test_no_early_release(impl):
    chip = make_chip(4, impl)
    delays = [[0, 50, 250, 1000], [700, 0, 0, 0], [5, 5, 5, 5]]
    entries, exits = run_with_stamps(chip, episodes=3, delays=delays)
    for k in range(3):
        assert min(exits[k]) >= max(entries[k]), \
            f"{impl}: a core left episode {k} before all arrived"


@pytest.mark.parametrize("impl", IMPLS)
def test_episode_separation(impl):
    """No core enters episode k+1 before every core left... in fact a core
    may enter k+1 while a slow core is still *exiting* k, but never before
    that slow core has *entered* k (two-episode overlap is impossible in a
    correct barrier)."""
    chip = make_chip(4, impl)
    delays = [[0, 0, 0, 900], [0, 0, 0, 0], [300, 0, 0, 0]]
    entries, exits = run_with_stamps(chip, episodes=3, delays=delays)
    for k in range(2):
        assert min(entries[k + 1]) >= max(entries[k])


@pytest.mark.parametrize("impl", IMPLS)
def test_accounting_counts_episodes(impl):
    chip = make_chip(4, impl)
    run_with_stamps(chip, episodes=5)
    assert chip.stats.num_barriers() == 5
    assert chip.accounting.open_episodes() == 0


@pytest.mark.parametrize("impl", IMPLS)
def test_single_core_chip_barrier_is_trivial(impl):
    chip = make_chip(1, impl)
    res = chip.run([iter([isa.BarrierOp(), isa.Compute(5),
                          isa.BarrierOp()])])
    assert chip.stats.num_barriers() == 2


@pytest.mark.parametrize("impl", IMPLS)
def test_many_episodes_stay_correct(impl):
    """Sense reversal across many episodes (catches stale-sense bugs)."""
    chip = make_chip(4, impl)
    entries, exits = run_with_stamps(chip, episodes=12)
    for k in range(12):
        assert min(exits[k]) >= max(entries[k])


@pytest.mark.parametrize("impl", ("csw", "dsw"))
def test_software_barrier_traffic_nonzero(impl):
    chip = make_chip(4, impl)
    run_with_stamps(chip, episodes=2)
    assert chip.stats.total_messages() > 0


def test_gl_barrier_traffic_zero():
    chip = make_chip(4, "gl")
    run_with_stamps(chip, episodes=2)
    assert chip.stats.total_messages() == 0


def test_gl_latency_is_13_cycles_default():
    """The paper's measured end-to-end GL latency (4 + library overhead)."""
    chip = make_chip(4, "gl")
    run_with_stamps(chip, episodes=4)
    for sample in chip.stats.barriers:
        assert sample.latency_after_last_arrival == 13


def test_gl_latency_is_4_cycles_without_overhead():
    chip = make_chip(4, "gl", entry_overhead=0)
    run_with_stamps(chip, episodes=4)
    # 1-cycle bar_reg write + 4-cycle network.
    for sample in chip.stats.barriers:
        assert sample.latency_after_last_arrival == 5
