"""Dissemination and tournament barrier tests."""

import pytest

from helpers import make_chip
from repro.cpu import isa
from repro.sync.dissemination import DisseminationBarrier, rounds_for
from repro.sync.tournament import TournamentBarrier

IMPLS = ("diss", "tour")


def run_with_stamps(chip, episodes, delays=None):
    n = chip.num_cores
    entries = [[None] * n for _ in range(episodes)]
    exits = [[None] * n for _ in range(episodes)]

    def prog(cid):
        for k in range(episodes):
            if delays:
                yield isa.Compute(delays[k][cid])
            entries[k][cid] = chip.engine.now
            yield isa.BarrierOp()
            exits[k][cid] = chip.engine.now

    chip.run([prog(c) for c in range(n)])
    return entries, exits


def test_rounds_for():
    assert rounds_for(1) == 0
    assert rounds_for(2) == 1
    assert rounds_for(5) == 3
    assert rounds_for(32) == 5


@pytest.mark.parametrize("impl", IMPLS)
@pytest.mark.parametrize("cores", [2, 4, 5, 8])
def test_no_early_release(impl, cores):
    chip = make_chip(cores, impl)
    delays = [[(c * 131) % 700 for c in range(cores)],
              [0] * cores,
              [900 if c == 0 else 0 for c in range(cores)]]
    entries, exits = run_with_stamps(chip, episodes=3, delays=delays)
    for k in range(3):
        assert min(exits[k]) >= max(entries[k]), \
            f"{impl}/{cores}: early release in episode {k}"


@pytest.mark.parametrize("impl", IMPLS)
def test_many_episodes_monotonic_flags(impl):
    """Episode counters make flag reuse safe over many episodes."""
    chip = make_chip(4, impl)
    entries, exits = run_with_stamps(chip, episodes=15)
    for k in range(15):
        assert min(exits[k]) >= max(entries[k])
    assert chip.stats.num_barriers() == 15


@pytest.mark.parametrize("impl", IMPLS)
def test_single_core(impl):
    chip = make_chip(1, impl)
    chip.run([iter([isa.BarrierOp(), isa.BarrierOp()])])
    assert chip.stats.num_barriers() == 2


def test_dissemination_has_no_champion_bottleneck():
    """Every core performs the same number of stores (symmetric)."""
    chip = make_chip(8, "diss")
    run_with_stamps(chip, episodes=3)
    # Symmetric algorithm: per-core barrier cycles are near-uniform.
    from repro.common.stats import CycleCat
    per_core = [chip.stats.core_cycle_breakdown(c)[CycleCat.BARRIER]
                for c in range(8)]
    assert max(per_core) < 2.5 * min(per_core)


def test_tournament_bracket_structure():
    alloc_chip = make_chip(8, "tour")
    barrier = alloc_chip.barrier_impl
    assert isinstance(barrier, TournamentBarrier)
    assert barrier.rounds == 3
    ctx = barrier.contexts[0]
    assert len(ctx["arrive"]) == 8
    assert len(ctx["release"]) == 8


def test_describe_strings():
    chip = make_chip(4, "diss")
    assert "dissemination" in chip.barrier_impl.describe()
    chip = make_chip(4, "tour")
    assert "tournament" in chip.barrier_impl.describe()


@pytest.mark.parametrize("impl", IMPLS)
def test_hypothesis_like_random_schedule(impl):
    import random
    rng = random.Random(11)
    chip = make_chip(6, impl)
    delays = [[rng.randrange(0, 1500) for _ in range(6)]
              for _ in range(4)]
    entries, exits = run_with_stamps(chip, episodes=4, delays=delays)
    for k in range(4):
        assert min(exits[k]) >= max(entries[k])
