"""Combining-tree structure tests."""

import pytest

from repro.common.errors import ConfigError
from repro.mem.address import AddressMap, Allocator
from repro.sync.dsw import CombiningTreeBarrier, build_tree


def make_allocator(tiles=4):
    return Allocator(AddressMap(num_tiles=tiles))


def test_binary_tree_shape_8_cores():
    alloc = make_allocator()
    nodes, leaf_of = build_tree(alloc, list(range(8)), arity=2)
    # 4 leaves + 2 internal + 1 root.
    assert len(nodes) == 7
    assert len({id(n) for n in leaf_of.values()}) == 4
    root = [n for n in nodes if n.parent is None]
    assert len(root) == 1
    assert max(n.level for n in nodes) == 2


def test_tree_levels_connect_to_root():
    alloc = make_allocator()
    nodes, leaf_of = build_tree(alloc, list(range(8)), arity=2)
    root = next(n for n in nodes if n.parent is None)
    for leaf in set(map(id, leaf_of.values())):
        pass
    for cid, leaf in leaf_of.items():
        node = leaf
        while node.parent is not None:
            node = node.parent
        assert node is root


def test_odd_core_count_tree():
    alloc = make_allocator()
    nodes, leaf_of = build_tree(alloc, list(range(5)), arity=2)
    assert set(leaf_of) == {0, 1, 2, 3, 4}
    fanins = sorted(n.fanin for n in nodes if n.level == 0)
    assert fanins == [1, 2, 2]  # 5 cores -> leaves of 2,2,1


def test_nodes_are_line_padded_and_distinct():
    alloc = make_allocator()
    nodes, _ = build_tree(alloc, list(range(8)), arity=2)
    addrs = [n.count_addr for n in nodes] + [n.release_addr for n in nodes]
    assert len(set(addrs)) == len(addrs)
    assert all(a % 64 == 0 for a in addrs)


def test_nodes_homed_at_first_group_core():
    amap = AddressMap(num_tiles=8)
    alloc = Allocator(amap)
    nodes, leaf_of = build_tree(alloc, list(range(8)), arity=2)
    for node in nodes:
        if node.level == 0:
            assert amap.home_of(node.count_addr) == node.home_core


def test_arity_4_is_shallower():
    alloc = make_allocator()
    nodes2, _ = build_tree(alloc, list(range(16)), arity=2)
    nodes4, _ = build_tree(alloc, list(range(16)), arity=4)
    assert max(n.level for n in nodes4) < max(n.level for n in nodes2)


def test_depth_property():
    alloc = make_allocator()
    barrier = CombiningTreeBarrier(alloc, list(range(16)), arity=2)
    assert barrier.depth == 4  # 8 leaves -> 4 -> 2 -> 1


def test_invalid_construction():
    alloc = make_allocator()
    with pytest.raises(ConfigError):
        build_tree(alloc, list(range(4)), arity=1)
    with pytest.raises(ConfigError):
        CombiningTreeBarrier(alloc, [])
