"""Property-based barrier-semantics tests across all implementations.

For random per-core work schedules, every implementation must satisfy the
fundamental barrier property (no exit of episode k before every entry of
episode k) and agree on the episode count.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import make_chip
from repro.cpu import isa


def run_schedule(impl: str, num_cores: int, delays: list[list[int]]):
    chip = make_chip(num_cores, impl)
    episodes = len(delays)
    entries = [[None] * num_cores for _ in range(episodes)]
    exits = [[None] * num_cores for _ in range(episodes)]

    def prog(cid):
        for k in range(episodes):
            yield isa.Compute(delays[k][cid])
            entries[k][cid] = chip.engine.now
            yield isa.BarrierOp()
            exits[k][cid] = chip.engine.now

    chip.run([prog(c) for c in range(num_cores)])
    return chip, entries, exits


@pytest.mark.parametrize("impl", ["csw", "dsw", "gl"])
@settings(max_examples=15, deadline=None)
@given(data=st.data())
def test_barrier_property_random_schedules(impl, data):
    num_cores = data.draw(st.sampled_from([2, 4, 6]))
    episodes = data.draw(st.integers(1, 4))
    delays = data.draw(st.lists(
        st.lists(st.integers(0, 2_000), min_size=num_cores,
                 max_size=num_cores),
        min_size=episodes, max_size=episodes))

    chip, entries, exits = run_schedule(impl, num_cores, delays)

    for k in range(episodes):
        assert min(exits[k]) >= max(entries[k]), \
            f"{impl}: episode {k} released early"
    assert chip.stats.num_barriers() == episodes
    # Every single run terminates with a drained engine (no stuck spins).
    assert chip.engine.pending() == 0


@settings(max_examples=10, deadline=None)
@given(data=st.data())
def test_gl_and_dsw_agree_on_episode_structure(data):
    """Both implementations, same schedule: same episode count and the
    same fundamental ordering of episodes (sanity cross-check)."""
    num_cores = 4
    episodes = data.draw(st.integers(1, 3))
    delays = data.draw(st.lists(
        st.lists(st.integers(0, 500), min_size=num_cores,
                 max_size=num_cores),
        min_size=episodes, max_size=episodes))

    _, entries_gl, exits_gl = run_schedule("gl", num_cores, delays)
    _, entries_dsw, exits_dsw = run_schedule("dsw", num_cores, delays)
    for k in range(episodes):
        assert min(exits_gl[k]) >= max(entries_gl[k])
        assert min(exits_dsw[k]) >= max(entries_dsw[k])
        # GL's release never lags DSW's for the same arrival pattern
        # (hardware is uniformly faster once arrivals match).
        assert max(exits_gl[k]) <= max(exits_dsw[k]) + 10_000
