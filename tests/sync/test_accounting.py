"""Barrier-episode accounting tests."""

import pytest

from repro.common.errors import SimulationError
from repro.common.stats import StatsRegistry
from repro.sync.accounting import BarrierAccounting


def test_episode_lifecycle():
    stats = StatsRegistry(2)
    acct = BarrierAccounting(stats, num_cores=2)
    e0 = acct.arrive(0, 0, now=10)
    e1 = acct.arrive(1, 0, now=25)
    assert e0 == e1 == 0
    acct.depart(0, 0, e0, now=30)
    assert stats.num_barriers() == 0  # not complete yet
    acct.depart(1, 0, e1, now=31)
    assert stats.num_barriers() == 1
    s = stats.barriers[0]
    assert (s.first_arrival, s.last_arrival, s.release) == (10, 25, 31)
    assert acct.open_episodes() == 0


def test_per_core_episode_indexing():
    stats = StatsRegistry(2)
    acct = BarrierAccounting(stats, num_cores=2)
    assert acct.arrive(0, 0, 1) == 0
    acct.depart(0, 0, 0, 2)  # core 0 done with ep 0 (core 1 still out)
    assert acct.arrive(0, 0, 3) == 1  # core 0 moves to ep 1
    assert acct.arrive(1, 0, 4) == 0  # core 1 joins ep 0
    acct.depart(1, 0, 0, 5)
    assert stats.num_barriers() == 1


def test_contexts_are_independent():
    stats = StatsRegistry(2)
    acct = BarrierAccounting(stats, num_cores=2)
    assert acct.arrive(0, barrier_id=0, now=1) == 0
    assert acct.arrive(0, barrier_id=1, now=2) == 0
    assert acct.open_episodes() == 2


def test_over_arrival_detected():
    stats = StatsRegistry(2)
    acct = BarrierAccounting(stats, num_cores=1)
    acct.arrive(0, 0, 1)
    acct.arrive(0, 0, 2)  # core 0's second episode: fine
    # Forge an impossible third arrival into episode 0.
    acct._core_count[(0, 0)] = 0
    with pytest.raises(SimulationError):
        acct.arrive(0, 0, 3)
