"""MCS queue-lock tests."""

import pytest

from helpers import make_chip
from repro.cpu import isa
from repro.sync.locks import MCSLock, bind_mcs


def run_critical_sections(chip, per_core=3, stagger=0):
    bind_mcs(chip)
    lock = chip.allocator.alloc_line()
    shared = chip.allocator.alloc_line()
    tracker = {"depth": 0, "violations": 0, "entries": 0}

    def prog(cid):
        yield isa.Compute(cid * stagger)
        for _ in range(per_core):
            yield isa.AcquireLock(lock)
            tracker["depth"] += 1
            tracker["entries"] += 1
            if tracker["depth"] > 1:
                tracker["violations"] += 1
            value = yield isa.Load(shared)
            yield isa.Compute(11)
            yield isa.Store(shared, value + 1)
            tracker["depth"] -= 1
            yield isa.ReleaseLock(lock)

    chip.run([prog(c) for c in range(chip.num_cores)])
    return tracker, chip.funcmem.load(shared)


def test_mutual_exclusion_contended():
    chip = make_chip(4)
    tracker, final = run_critical_sections(chip, per_core=4)
    assert tracker["violations"] == 0
    assert final == 16


def test_mutual_exclusion_staggered():
    chip = make_chip(8)
    tracker, final = run_critical_sections(chip, per_core=2, stagger=37)
    assert tracker["violations"] == 0
    assert final == 16


def test_uncontended_fast_path():
    chip = make_chip(2)
    bind_mcs(chip)
    lock = chip.allocator.alloc_line()

    def prog():
        yield isa.AcquireLock(lock)
        yield isa.ReleaseLock(lock)

    progs = [prog(), None]
    res = chip.run(progs)
    assert res.total_cycles < 1500
    # Lock word cleared (free) afterwards.
    assert chip.funcmem.load(lock) == 0


def test_each_waiter_spins_on_own_node():
    """The contention-free property: a release invalidates one waiter's
    node, not a shared flag line -- with N waiters, invalidation count per
    handoff stays O(1)."""
    chip = make_chip(8)
    mcs = bind_mcs(chip)
    # Nodes are distinct line-padded locations.
    assert len({chip.amap.line_of(n) for n in mcs.nodes}) == 8


def test_handoff_is_fifo_when_staggered():
    chip = make_chip(4)
    bind_mcs(chip)
    lock = chip.allocator.alloc_line()
    order = []

    def prog(cid):
        yield isa.Compute(cid * 3000)
        yield isa.AcquireLock(lock)
        order.append(cid)
        yield isa.Compute(8000)
        yield isa.ReleaseLock(lock)

    chip.run([prog(c) for c in range(4)])
    assert order == [0, 1, 2, 3]
