"""Schedule-permutation properties for the software barriers.

The model checker (:mod:`repro.verify`) proves arrival-order
insensitivity exhaustively for the G-line hardware; these tests carry
the same obligation to the software implementations, where exhaustive
checking is impractical: for *drawn arrival permutations* (realized as
strictly staggered per-core delays) every implementation must

1. release each core exactly once per episode, in every ordering;
2. never release an episode before its last arrival;
3. advance its per-core episode state in lockstep -- the CSW/DSW sense
   bit reverses every episode, the dissemination/tournament episode
   counters count them -- so flag reuse across episodes stays safe.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import make_chip
from repro.cpu import isa

#: Gap between consecutive ranks of a drawn permutation, large enough to
#: dominate cache-miss jitter so the intended arrival order is realized.
STAGGER = 400

IMPLS = ("csw", "csw-fa", "dsw", "diss", "tour")

#: Per-core episode-state key and its expected value after E episodes.
EPISODE_STATE = {
    "csw": (("csw_sense", 0), lambda e: e % 2),
    "csw-fa": (("csw_sense", 0), lambda e: e % 2),
    "dsw": (("dsw_sense", 0), lambda e: e % 2),
    "diss": (("diss_episode", 0), lambda e: e),
    "tour": (("tour_episode", 0), lambda e: e),
}


def run_permutations(impl, num_cores, perms):
    """One chip run: episode k's arrivals follow permutation ``perms[k]``."""
    chip = make_chip(num_cores, impl)
    episodes = len(perms)
    entries = [[None] * num_cores for _ in range(episodes)]
    exits = [[None] * num_cores for _ in range(episodes)]
    counts = [[0] * num_cores for _ in range(episodes)]

    def prog(cid):
        for k, perm in enumerate(perms):
            yield isa.Compute(perm.index(cid) * STAGGER)
            entries[k][cid] = chip.engine.now
            yield isa.BarrierOp()
            counts[k][cid] += 1
            exits[k][cid] = chip.engine.now

    chip.run([prog(c) for c in range(num_cores)])
    return chip, entries, exits, counts


@pytest.mark.parametrize("impl", IMPLS)
@settings(max_examples=12, deadline=None)
@given(data=st.data())
def test_every_permutation_releases_exactly_once(impl, data):
    num_cores = data.draw(st.sampled_from([2, 3, 4, 5, 8]))
    episodes = data.draw(st.integers(1, 4))
    perms = [data.draw(st.permutations(range(num_cores)))
             for _ in range(episodes)]

    chip, entries, exits, counts = run_permutations(impl, num_cores,
                                                    perms)

    for k in range(episodes):
        # Exactly once: every core passed episode k's barrier exactly one
        # time, whatever the arrival order.
        assert counts[k] == [1] * num_cores, \
            f"{impl}: episode {k} release counts {counts[k]}"
        assert min(exits[k]) >= max(entries[k]), \
            f"{impl}: episode {k} released before its last arrival " \
            f"(perm {perms[k]})"
    assert chip.stats.num_barriers() == episodes
    assert chip.engine.pending() == 0

    key, expected = EPISODE_STATE[impl]
    for core in chip.cores:
        assert core.local.get(key, 0) == expected(episodes), \
            f"{impl}: core {core.cid} episode state did not advance " \
            f"in lockstep"


@pytest.mark.parametrize("impl", IMPLS)
@settings(max_examples=8, deadline=None)
@given(data=st.data())
def test_reversed_permutation_same_outcome(impl, data):
    """A permutation and its reverse produce the same episode structure:
    order changes *when* the barrier completes, never *whether* or how
    many times each core is released."""
    num_cores = data.draw(st.sampled_from([3, 4, 6]))
    perm = data.draw(st.permutations(range(num_cores)))
    rev = list(reversed(perm))

    chip_a, _, _, counts_a = run_permutations(impl, num_cores,
                                              [list(perm)])
    chip_b, _, _, counts_b = run_permutations(impl, num_cores, [rev])

    assert chip_a.stats.num_barriers() == chip_b.stats.num_barriers() == 1
    assert counts_a[0] == counts_b[0] == [1] * num_cores


@pytest.mark.parametrize("impl", IMPLS)
def test_sense_reverses_across_many_episodes(impl):
    """15 episodes of rotating arrival order: the per-core episode state
    stays in lockstep the whole way (flag-reuse safety)."""
    num_cores, episodes = 4, 15
    perms = [[(r + c) % num_cores for c in range(num_cores)]
             for r in range(episodes)]
    chip, entries, exits, counts = run_permutations(impl, num_cores,
                                                    perms)
    for k in range(episodes):
        assert counts[k] == [1] * num_cores
        assert min(exits[k]) >= max(entries[k])
    key, expected = EPISODE_STATE[impl]
    for core in chip.cores:
        assert core.local.get(key, 0) == expected(episodes)
