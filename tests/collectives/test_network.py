"""Engine-driven tests of the flat collective fabric."""

import random

import pytest

from repro.collectives import ops
from repro.collectives.config import CollectiveConfig
from repro.collectives.network import CollectiveNetwork
from repro.common.errors import CapacityError, GLineError
from repro.common.params import GLineConfig
from repro.common.stats import StatsRegistry
from repro.obs import MetricsRegistry, Observability, RingTracer
from repro.obs import events as obs_ev
from repro.sim.engine import Engine


def make_net(rows, cols, width=4, **cc_kwargs):
    engine = Engine()
    stats = StatsRegistry(rows * cols)
    cc = CollectiveConfig(enabled=True, value_width=width, **cc_kwargs)
    net = CollectiveNetwork(engine, stats, rows, cols, GLineConfig(), cc)
    return engine, net


def run_episode(engine, net, kind, values, spread=9, seed=0):
    rng = random.Random(seed)
    got = {}
    for cid, value in enumerate(values):
        engine.schedule(rng.randrange(spread), net.arrive, cid, kind,
                        value, (lambda v=None, c=cid:
                                got.__setitem__(c, v)))
    engine.run()
    return got


@pytest.mark.parametrize("rows,cols", [(1, 1), (1, 4), (3, 1), (2, 3),
                                       (4, 4), (7, 7)])
@pytest.mark.parametrize("kind", ops.KINDS)
def test_flat_delivers_reference_everywhere(rows, cols, kind):
    width = 4
    engine, net = make_net(rows, cols, width)
    n = rows * cols
    rng = random.Random(rows * 100 + cols)
    for episode in range(2):
        values = [rng.randrange(1 << width) for _ in range(n)]
        got = run_episode(engine, net, kind, values, seed=episode)
        ref = ops.reference_reduce(kind, values, width)
        assert got == {c: ref for c in range(n)}, (kind, values)
    assert net.collectives_completed == 2
    assert net.fully_idle()


def test_wide_values_on_narrow_wires():
    # 12-bit sums on a 3x3 mesh: bit-serial rounds must cover the full
    # carry growth (9 * 4095 needs 16 result bits).
    engine, net = make_net(3, 3, width=12)
    values = [(i * 911 + 7) % 4096 for i in range(9)]
    got = run_episode(engine, net, "sum", values)
    assert set(got.values()) == {sum(values)}


def test_double_arrival_rejected():
    engine, net = make_net(2, 2)
    engine.schedule(0, net.arrive, 0, "sum", 1, None)
    engine.schedule(1, net.arrive, 0, "sum", 2, None)
    with pytest.raises(CapacityError):
        engine.run()


def test_mixed_kind_arrivals_rejected():
    engine, net = make_net(2, 2)
    engine.schedule(0, net.arrive, 0, "sum", 1, None)
    engine.schedule(1, net.arrive, 1, "max", 2, None)
    with pytest.raises(GLineError):
        engine.run()


def test_next_episode_arrival_during_open_episode_is_queued():
    """Deliveries stagger across rows, so an early-released core may
    arrive for the *next* collective while this one is still draining.
    The fabric must queue it, not corrupt the open episode."""
    engine, net = make_net(3, 3, width=4)
    values = list(range(1, 10))
    ref0 = ops.reference_reduce("sum", values, 4)
    ref1 = ops.reference_reduce("max", values, 4)
    got0, got1 = {}, {}

    def resume(cid, value):
        got0[cid] = value
        # Immediately re-arrive for the next episode, same cycle.
        net.arrive(cid, "max", values[cid],
                   lambda v=None, c=cid: got1.__setitem__(c, v))

    for cid, value in enumerate(values):
        engine.schedule(cid % 4, net.arrive, cid, "sum", value,
                        (lambda v=None, c=cid: resume(c, v)))
    engine.run()
    assert set(got0.values()) == {ref0}
    assert got1 == {c: ref1 for c in range(9)}
    assert net.collectives_completed == 2
    assert net.fully_idle()


def test_trace_events_emitted():
    engine, net = make_net(2, 2, width=3)
    obs = Observability(tracer=RingTracer())
    net.set_obs(obs)
    run_episode(engine, net, "sum", [1, 2, 3, 4])
    kinds = {ev.kind for ev in obs.tracer.events}
    assert obs_ev.GL_REDUCE_ARRIVE in kinds
    assert obs_ev.GL_REDUCE_START in kinds
    assert obs_ev.GL_REDUCE_ROUND in kinds
    assert obs_ev.GL_REDUCE_RESULT in kinds
    arrives = [ev for ev in obs.tracer.events
               if ev.kind == obs_ev.GL_REDUCE_ARRIVE]
    assert len(arrives) == 4


def test_metrics_recorded():
    engine, net = make_net(2, 2)
    obs = Observability(metrics=MetricsRegistry())
    net.set_obs(obs)
    run_episode(engine, net, "vote", [1, 0, 1, 1])
    snap = obs.metrics.to_dict()
    assert snap["counters"]["collectives.episodes"] == 1
    assert net.stats.counters["collectives.completed"] == 1
