"""Fault hardening: watchdog detection, retry and software failover."""

from repro.collectives import ops
from repro.collectives.config import CollectiveConfig
from repro.collectives.hierarchical import HierarchicalCollectiveNetwork
from repro.collectives.network import CollectiveNetwork
from repro.common.params import GLineConfig
from repro.common.stats import StatsRegistry
from repro.faults import FAILOVER
from repro.sim.engine import Engine


def make_net(rows, cols, width=4, cls=CollectiveNetwork, **cc_kwargs):
    engine = Engine()
    stats = StatsRegistry(rows * cols)
    params = dict(watchdog_budget=64, watchdog_retries=2)
    params.update(cc_kwargs)
    cc = CollectiveConfig(enabled=True, value_width=width, **params)
    net = cls(engine, stats, rows, cols, GLineConfig(), cc)
    return engine, net


def stick(lines, suffix, level):
    hit = [line for line in lines if line.name.endswith(suffix)]
    assert hit, suffix
    for line in hit:
        line.stuck = level


def test_stuck_low_tx_fails_over_and_quarantines():
    engine, net = make_net(3, 3)
    stick(net.lines, "txH0", 0)
    got = {}
    for cid in range(9):
        engine.schedule(cid % 3, net.arrive, cid, "sum", cid + 1,
                        (lambda v=None, c=cid: got.__setitem__(c, v)))
    engine.run()
    # A dead counting wire is unhealable: all cores bounce to software.
    assert got == {c: FAILOVER for c in range(9)}
    assert net.quarantined
    assert net.failovers == 1
    assert net.retries == 2  # both retry budgets burned first
    assert len(net.failover_reports) == 1
    assert net.failover_reports[0]  # non-empty diagnostic


def test_post_quarantine_arrivals_bounce_immediately():
    engine, net = make_net(3, 3)
    stick(net.lines, "txH0", 0)
    for cid in range(9):
        engine.schedule(0, net.arrive, cid, "sum", 1, None)
    engine.run()
    assert net.quarantined
    late = {}
    engine.schedule(0, net.arrive, 4, "max", 2,
                    lambda v=None: late.__setitem__(4, v))
    engine.run()
    assert late == {4: FAILOVER}


def test_stuck_high_release_never_delivers_wrong_values():
    """The guard masks a stuck-high release wire cycle by cycle; any
    value that does get delivered must still be the reference."""
    engine, net = make_net(3, 3)
    stick(net.lines, "relH1", 1)
    got = {}
    for cid in range(9):
        engine.schedule(0, net.arrive, cid, "sum", cid + 1,
                        (lambda v=None, c=cid: got.__setitem__(c, v)))
    engine.run()
    ref = ops.reference_reduce("sum", list(range(1, 10)), 4)
    assert len(got) == 9
    assert all(v in (ref, FAILOVER) for v in got.values()), got
    assert net.detections >= 1


def test_hierarchical_failover_is_whole_op_and_idempotent():
    engine, net = make_net(8, 8, cls=HierarchicalCollectiveNetwork,
                           watchdog_retries=1)
    stick(net.clusters[0].lines, "txH0", 0)
    got = {}
    for cid in range(64):
        engine.schedule(cid % 5, net.arrive, cid, "max", cid,
                        (lambda v=None, c=cid: got.__setitem__(c, v)))
    engine.run()
    assert len(got) == 64
    assert set(got.values()) == {FAILOVER}
    assert net.quarantined
    # One whole-op failover, even though the top network bounces each
    # parked cluster root asynchronously.
    assert net.failovers == 1
