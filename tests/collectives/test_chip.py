"""CollectiveOp through the full chip: ISA dispatch, backend parity,
the dual-run oracle and end-to-end failover."""

import pytest

from repro.chip.cmp import CMP
from repro.collectives import ops
from repro.collectives.config import CollectiveConfig
from repro.common.params import CMPConfig
from repro.cpu import isa


def run_chip(num_cores, cc, kinds=("sum", "min", "max", "vote", "bcast"),
             backend="heap"):
    cfg = CMPConfig.for_cores(num_cores, collectives=cc).with_(
        sim_backend=backend)
    chip = CMP(cfg, barrier="gl")
    results = {}

    def prog(cid):
        for episode, kind in enumerate(kinds):
            value = (cid * 7 + episode * 3 + 1) % (1 << cc.value_width)
            outcome = yield isa.CollectiveOp(kind, value=value)
            results[(kind, cid)] = outcome
            yield isa.Compute(1 + cid % 3)

    run = chip.run([prog(c) for c in range(num_cores)])
    return run, results


def reference(num_cores, cc, kinds=("sum", "min", "max", "vote",
                                    "bcast")):
    refs = {}
    for episode, kind in enumerate(kinds):
        vals = [(c * 7 + episode * 3 + 1) % (1 << cc.value_width)
                for c in range(num_cores)]
        for c in range(num_cores):
            refs[(kind, c)] = ops.reference_reduce(kind, vals,
                                                   cc.value_width)
    return refs


def test_flat_chip_delivers_references():
    cc = CollectiveConfig(enabled=True, value_width=8)
    _, results = run_chip(16, cc)
    assert results == reference(16, cc)


def test_heap_and_batched_backends_bit_identical():
    cc = CollectiveConfig(enabled=True, value_width=8)
    run_h, res_h = run_chip(16, cc, backend="heap")
    run_b, res_b = run_chip(16, cc, backend="batched")
    assert res_h == res_b
    assert run_h.total_cycles == run_b.total_cycles


def test_hierarchical_chip():
    cc = CollectiveConfig(enabled=True, value_width=6)
    _, results = run_chip(64, cc)
    assert results == reference(64, cc)


def test_software_backend_same_values():
    cc = CollectiveConfig(enabled=True, backend="sw", value_width=8)
    _, res_sw = run_chip(16, cc)
    assert res_sw == reference(16, cc)


def test_in_flight_idents_over_time_slots():
    cc = CollectiveConfig(enabled=True, value_width=4, time_slots=2)
    chip = CMP(CMPConfig.for_cores(16, collectives=cc), barrier="gl")
    results = {}

    def prog(cid):
        r0 = yield isa.CollectiveOp("sum", value=cid % 16, ident=0)
        results[("sum", cid)] = r0
        r1 = yield isa.CollectiveOp("max", value=(cid * 5) % 16, ident=1)
        results[("max", cid)] = r1

    chip.run([prog(c) for c in range(16)])
    ref0 = ops.reference_reduce("sum", [c % 16 for c in range(16)], 4)
    ref1 = ops.reference_reduce("max", [(c * 5) % 16 for c in range(16)],
                                4)
    assert all(results[("sum", c)] == ref0 for c in range(16))
    assert all(results[("max", c)] == ref1 for c in range(16))


def test_disabled_chip_has_no_collective_engine():
    chip = CMP(CMPConfig.for_cores(16), barrier="gl")
    assert chip.collective_impl is None


def test_unbound_collective_op_raises_helpfully():
    chip = CMP(CMPConfig.for_cores(16), barrier="gl")
    with pytest.raises(Exception, match="[Cc]ollective"):
        chip.run([iter([isa.CollectiveOp("sum", value=1)])] + [None] * 15)


def test_stuck_wire_fails_over_to_software_with_correct_value():
    """The acceptance scenario: a degraded counting wire must degrade to
    the software NoC all-reduce and still deliver the CORRECT result to
    every core, then keep working on later episodes."""
    cc = CollectiveConfig(enabled=True, value_width=8,
                          watchdog_budget=64, watchdog_retries=1)
    chip = CMP(CMPConfig.for_cores(16, collectives=cc), barrier="gl")
    net = chip.collective_impl.networks[0]
    for line in net.lines:
        if line.name.endswith("txH0"):
            line.stuck = 0
    results = {}

    def prog(cid):
        first = yield isa.CollectiveOp("sum", value=cid + 1)
        results[cid] = first
        second = yield isa.CollectiveOp("max", value=cid)
        results[(cid, 2)] = second

    chip.run([prog(c) for c in range(16)])
    ref = ops.reference_reduce("sum", list(range(1, 17)), 8)
    assert all(results[c] == ref for c in range(16))
    ref2 = ops.reference_reduce("max", list(range(16)), 8)
    assert all(results[(c, 2)] == ref2 for c in range(16))
    assert net.quarantined
    counters = chip.stats.counters
    assert counters.get("faults.failover.sw_collectives", 0) >= 16
