"""Context builders: replication, hierarchy selection and time
multiplexing over one shared wire budget."""

import random

import pytest

from repro.collectives import ops
from repro.collectives.build import build_collective_contexts, total_wires
from repro.collectives.config import CollectiveConfig
from repro.collectives.hierarchical import HierarchicalCollectiveNetwork
from repro.collectives.network import CollectiveNetwork
from repro.common.errors import CapacityError
from repro.common.params import GLineConfig
from repro.common.stats import StatsRegistry
from repro.sim.engine import Engine


def build(rows, cols, **cc_kwargs):
    engine = Engine()
    stats = StatsRegistry(rows * cols)
    cc = CollectiveConfig(enabled=True, **cc_kwargs)
    return engine, build_collective_contexts(engine, stats, rows, cols,
                                             GLineConfig(), cc)


def test_flat_mesh_gets_flat_network():
    _, ctxs = build(4, 4)
    assert len(ctxs) == 1
    assert isinstance(ctxs[0], CollectiveNetwork)


def test_large_mesh_goes_hierarchical():
    _, ctxs = build(16, 16)
    assert isinstance(ctxs[0], HierarchicalCollectiveNetwork)


def test_space_multiplexed_contexts_replicate_wires():
    _, ctxs = build(3, 3, num_contexts=2)
    assert len(ctxs) == 2
    assert total_wires(ctxs) == 2 * ctxs[0].num_glines


def test_time_multiplexed_contexts_share_wires():
    _, ctxs = build(3, 3, time_slots=2)
    assert len(ctxs) == 2
    assert total_wires(ctxs) == ctxs[0].num_glines


def test_time_multiplexing_rejects_hierarchical_meshes():
    with pytest.raises(CapacityError):
        build(16, 16, time_slots=2)


def test_time_multiplexed_episodes_are_independent():
    engine, ctxs = build(2, 2, value_width=4, time_slots=2)
    rng = random.Random(7)
    vals = [[rng.randrange(16) for _ in range(4)] for _ in range(2)]
    got = [{}, {}]
    for cid in range(4):
        for k, kind in enumerate(("sum", "max")):
            engine.schedule(rng.randrange(6), ctxs[k].arrive, cid, kind,
                            vals[k][cid],
                            (lambda v=None, c=cid, k=k:
                             got[k].__setitem__(c, v)))
    engine.run()
    assert set(got[0].values()) == \
        {ops.reference_reduce("sum", vals[0], 4)}
    assert set(got[1].values()) == \
        {ops.reference_reduce("max", vals[1], 4)}
    assert all(ctx.fully_idle() for ctx in ctxs)
