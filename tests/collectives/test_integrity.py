"""End-to-end integrity layer: detection modes, the recovery ladder,
bounded bookkeeping, and the off-mode silent-corruption characterization.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives import ops
from repro.collectives.config import CollectiveConfig
from repro.collectives.controllers import M_ROUNDS
from repro.collectives.fabric import CollectiveFabric
from repro.collectives.hierarchical import HierarchicalCollectiveNetwork
from repro.collectives.network import CollectiveNetwork
from repro.collectives.timemux import build_time_multiplexed
from repro.common.errors import ConfigError
from repro.common.params import GLineConfig
from repro.common.stats import StatsRegistry
from repro.faults import FAILOVER
from repro.gline.integrity import (INTEGRITY_MODES, RESIDUE_MOD,
                                   full_jitter, majority, residue_of)
from repro.gline.network import FAILOVER_REPORT_CAP
from repro.sim.engine import Engine

MODES = [m for m in INTEGRITY_MODES if m != "off"]


# ---------------------------------------------------------------------- #
# repro.gline.integrity primitives
# ---------------------------------------------------------------------- #
def test_residue_arithmetic():
    assert RESIDUE_MOD == 15
    for j in range(12):
        # A +-2^j corruption is never congruent to zero mod the Mersenne
        # modulus: every single-round miscount shifts the residue.
        assert (1 << j) % RESIDUE_MOD != 0
    assert residue_of(15) == 0 and residue_of(16) == 1


def test_majority():
    assert majority([1, 1, 0]) == 1
    assert majority([0, 1, 0]) == 0
    assert majority([2, 2, 2]) == 2
    assert majority([0, 1]) is None
    assert majority([0, 1, 2]) is None


def test_full_jitter_is_deterministic_and_bounded():
    a = full_jitter("net", 3, 1)
    assert a == full_jitter("net", 3, 1)
    assert a != full_jitter("net", 3, 2) or a == 0  # attempt-salted
    for attempt in range(8):
        assert 0 <= full_jitter("n", 0, attempt) < 64


# ---------------------------------------------------------------------- #
# Config plumbing
# ---------------------------------------------------------------------- #
def test_config_validates_integrity_mode():
    for mode in INTEGRITY_MODES:
        CollectiveConfig(integrity=mode)
    with pytest.raises(ConfigError):
        CollectiveConfig(integrity="parity")
    with pytest.raises(ConfigError):
        CollectiveConfig(integrity_retry_budget=-1)


def test_config_to_dict_is_byte_stable_at_defaults():
    d = CollectiveConfig().to_dict()
    assert "integrity" not in d
    assert "integrity_retry_budget" not in d
    d2 = CollectiveConfig(integrity="echo", integrity_retry_budget=5
                          ).to_dict()
    assert d2["integrity"] == "echo"
    assert d2["integrity_retry_budget"] == 5
    rt = CollectiveConfig.from_dict(d2)
    assert rt.integrity == "echo" and rt.integrity_retry_budget == 5


# ---------------------------------------------------------------------- #
# Lockstep fabric: every mode completes cleanly and agrees with off
# ---------------------------------------------------------------------- #
def _lockstep(rows, cols, kind, values, width=4, mode="off",
              perturb=None, budget=3, max_ticks=4000):
    fab = CollectiveFabric(rows, cols, width, 6, integrity=mode,
                           integrity_budget=budget)
    fab.begin(kind)
    fab.perturb_hook = perturb
    for i, v in enumerate(values):
        fab.arrive_local(i, v)
    delivered = {}
    ticks = 0
    while not fab.done and ticks < max_ticks:
        for local, value in fab.tick():
            delivered[local] = value
        ticks += 1
    return fab, delivered, ticks


@pytest.mark.parametrize("mode", INTEGRITY_MODES)
@pytest.mark.parametrize("kind", ops.KINDS)
def test_clean_run_all_modes_all_kinds(mode, kind):
    values = [(3 * i + 2) % 16 for i in range(12)]
    ref = ops.reference_reduce(kind, values, 4)
    fab, delivered, ticks = _lockstep(3, 4, kind, values, mode=mode)
    assert fab.done and ticks < 4000
    assert set(delivered.values()) == {ref}
    assert not fab.int_flagged, f"{mode}/{kind} flagged a clean run"


def test_verified_modes_cost_more_ticks_than_off():
    values = [(3 * i + 2) % 16 for i in range(16)]
    costs = {m: _lockstep(4, 4, "sum", values, mode=m)[2]
             for m in INTEGRITY_MODES}
    assert costs["off"] < costs["residue"] < costs["echo"] < costs["vote"]


# ---------------------------------------------------------------------- #
# Satellite: Hypothesis characterization of the off-mode vulnerability.
# A single seeded miscount yields a wrong SUM while the op "succeeds".
# ---------------------------------------------------------------------- #
@settings(max_examples=40, deadline=None)
@given(st.integers(2, 4), st.integers(2, 4), st.integers(2, 5),
       st.data())
def test_off_mode_single_miscount_silently_corrupts_sum(
        rows, cols, width, data):
    n = rows * cols
    values = data.draw(st.lists(
        st.integers(1, (1 << width) - 1), min_size=n, max_size=n))
    ref = ops.reference_reduce("sum", values, width)
    injected = [False]

    def perturb(lines):
        if injected[0]:
            return
        for m in fab.rmasters:
            # Undercount the first data round with a nonzero count:
            # never clamped, always a real corruption.
            if m.tx is not None and m.state == M_ROUNDS \
                    and m.tx._asserting:
                m.tx.count_delta = -1
                injected[0] = True
                return

    fab = CollectiveFabric(rows, cols, width, 6)
    fab.begin("sum")
    fab.perturb_hook = perturb
    for i, v in enumerate(values):
        fab.arrive_local(i, v)
    delivered = {}
    ticks = 0
    while not fab.done and ticks < 4000:
        for local, value in fab.tick():
            delivered[local] = value
        ticks += 1
    assert injected[0], "values guarantee an assertable data round"
    # The operation completes and reports success to every core...
    assert fab.done and len(delivered) == n
    assert not fab.int_flagged
    # ...but the value is silently wrong, for everyone.
    assert set(delivered.values()) != {ref}


@pytest.mark.parametrize("mode,healed", [("echo", True), ("vote", True),
                                         ("residue", False)])
def test_single_miscount_handled_by_every_verified_mode(mode, healed):
    values = [3, 5, 7, 2]
    ref = ops.reference_reduce("sum", values, 4)
    injected = [False]

    def perturb(lines):
        if injected[0]:
            return
        m = fab.rmasters[0]
        if m.state == M_ROUNDS and not m.confirming \
                and m.tx._asserting:
            m.tx.count_delta = -1
            injected[0] = True

    fab = CollectiveFabric(2, 2, 4, 6, integrity=mode)
    fab.begin("sum")
    fab.perturb_hook = perturb
    for i, v in enumerate(values):
        fab.arrive_local(i, v)
    delivered = {}
    ticks = 0
    while not fab.done and ticks < 4000:
        for local, value in fab.tick():
            delivered[local] = value
        ticks += 1
    assert injected[0] and fab.done
    corrections = sum(m.int_corrected for m in fab._all_masters())
    assert fab.int_flagged or corrections, \
        f"{mode} missed the corruption"
    if healed:
        # echo retries the round in-wire (flagged); vote out-votes the
        # bad sample silently (a correction, no fault flag).
        assert set(delivered.values()) == {ref}
        assert not fab.int_exhausted
        if mode == "vote":
            assert corrections >= 1 and not fab.int_flagged
    else:
        # residue detects at the end of the stage: no round retry, the
        # fabric completes exhausted and the network escalates.
        assert fab.int_exhausted


# ---------------------------------------------------------------------- #
# The network recovery ladder: retry -> whole-op retry -> failover
# ---------------------------------------------------------------------- #
def _ladder_run(integrity, inject_rounds, budget=1, wd_retries=1):
    eng = Engine()
    stats = StatsRegistry(4)
    cc = CollectiveConfig(enabled=True, value_width=4,
                          integrity=integrity,
                          integrity_retry_budget=budget,
                          watchdog_budget=400, watchdog_retries=wd_retries)
    net = CollectiveNetwork(eng, stats, 2, 2, GLineConfig(), cc)
    results = {}
    vals = [3, 5, 7, 2]
    for cid in range(4):
        net.arrive(cid, "sum", vals[cid],
                   (lambda c: lambda v: results.__setitem__(c, v))(cid))
    count = [0]

    def hook(lines):
        m = net.fabric.rmasters[0]
        if count[0] < inject_rounds and m.state == M_ROUNDS \
                and not m.confirming and m.iphase == 0:
            m.tx.count_delta = -1
            count[0] += 1

    net.fabric.perturb_hook = hook
    eng.run(until=8000)
    ref = ops.reference_reduce("sum", vals, 4)
    return results, ref, net, stats


def test_ladder_rung1_round_retry_heals():
    results, ref, net, stats = _ladder_run("echo", inject_rounds=1)
    assert set(results.values()) == {ref}
    assert net.int_detections >= 1 and net.int_round_retries >= 1
    assert net.int_op_retries == 0 and net.int_failovers == 0
    assert stats.counters["faults.integrity.detections"] >= 1
    assert stats.counters["faults.integrity.round_retries"] >= 1
    assert list(net.integrity_log)


def test_ladder_rung2_and_3_escalate_then_failover():
    results, ref, net, stats = _ladder_run("echo", inject_rounds=500)
    assert set(results.values()) == {FAILOVER}
    assert net.int_op_retries >= 1 and net.int_failovers == 1
    assert net.quarantined
    assert stats.counters["faults.integrity.exhausted"] >= 2
    assert stats.counters["faults.integrity.op_retries"] >= 1
    assert stats.counters["faults.integrity.failovers"] == 1


def test_off_mode_network_delivers_silently_wrong_value():
    results, ref, net, stats = _ladder_run("off", inject_rounds=1)
    assert len(results) == 4
    assert set(results.values()) != {ref}
    assert net.int_detections == 0 and not net.quarantined
    assert "faults.integrity.detections" not in stats.counters


def test_vote_mode_corrects_without_detection_event():
    results, ref, net, stats = _ladder_run("vote", inject_rounds=1)
    assert set(results.values()) == {ref}
    assert net.int_detections == 0
    assert net.int_corrections >= 1
    assert stats.counters["faults.integrity.corrections"] >= 1


# ---------------------------------------------------------------------- #
# Satellite: bounded bookkeeping -- capped deques, drop counters
# ---------------------------------------------------------------------- #
def test_integrity_log_is_capped_with_drop_counter():
    eng = Engine()
    stats = StatsRegistry(4)
    cc = CollectiveConfig(enabled=True, integrity="echo")
    net = CollectiveNetwork(eng, stats, 2, 2, GLineConfig(), cc)
    assert net.integrity_log.maxlen == FAILOVER_REPORT_CAP
    for i in range(FAILOVER_REPORT_CAP + 17):
        net._log_integrity(f"entry {i}")
    assert len(net.integrity_log) == FAILOVER_REPORT_CAP
    assert net.integrity_log_dropped == 17
    assert stats.counters["faults.integrity.log_dropped"] == 17
    # The oldest entries were dropped, not the newest.
    assert list(net.integrity_log)[-1] == f"entry {FAILOVER_REPORT_CAP + 16}"


def test_failover_reports_are_capped_with_drop_counter():
    eng = Engine()
    stats = StatsRegistry(4)
    cc = CollectiveConfig(enabled=True)
    net = CollectiveNetwork(eng, stats, 2, 2, GLineConfig(), cc)
    assert net.failover_reports.maxlen == FAILOVER_REPORT_CAP
    for i in range(FAILOVER_REPORT_CAP + 5):
        net._log_failover(f"report {i}")
    assert len(net.failover_reports) == FAILOVER_REPORT_CAP
    assert net.failover_reports_dropped == 5
    assert stats.counters["faults.collective.reports_dropped"] == 5


# ---------------------------------------------------------------------- #
# Hierarchical: segment failover under sustained corruption
# ---------------------------------------------------------------------- #
def _hier_run(segment_mode, inject_rounds):
    eng = Engine()
    stats = StatsRegistry(16)
    cc = CollectiveConfig(enabled=True, value_width=4, integrity="echo",
                          integrity_retry_budget=1,
                          watchdog_budget=400, watchdog_retries=1)
    gl = GLineConfig(max_transmitters=1, segment_failover=segment_mode)
    net = HierarchicalCollectiveNetwork(eng, stats, 4, 4, gl, cc)
    results = {}
    vals = [(i % 13) + 1 for i in range(16)]
    for cid in range(16):
        net.arrive(cid, "sum", vals[cid],
                   (lambda c: lambda v: results.__setitem__(c, v))(cid))
    cl0 = net.clusters[0]
    count = [0]

    def hook(lines):
        m = cl0.fabric.rmasters[0]
        if count[0] < inject_rounds and m.state == M_ROUNDS \
                and not m.confirming and m.iphase == 0:
            m.tx.count_delta = -1
            count[0] += 1

    cl0.fabric.perturb_hook = hook
    eng.run(until=40000)
    ref = ops.reference_reduce("sum", vals, 4)
    return results, ref, net, stats


def test_segment_failover_contains_a_corrupt_cluster():
    results, ref, net, stats = _hier_run(True, inject_rounds=500)
    # The poisoned cluster degrades to a software cohort; the other
    # three clusters and the top network stay on hardware, and every
    # core still gets the bit-exact global result.
    assert len(results) == 16 and set(results.values()) == {ref}
    assert net.segment_failovers == 1 and not net.quarantined
    assert stats.counters["faults.collective.segment_failovers"] == 1
    assert stats.counters["faults.collective.segment_arrivals"] >= 4
    assert net.int_detections >= 1    # aggregated integrity counters


def test_without_segment_mode_corruption_aborts_whole_op():
    results, ref, net, stats = _hier_run(False, inject_rounds=500)
    assert set(results.values()) == {FAILOVER}
    assert net.quarantined and net.segment_failovers == 0


def test_segment_mode_is_inert_on_clean_runs():
    results, ref, net, stats = _hier_run(True, inject_rounds=0)
    assert set(results.values()) == {ref}
    assert net.segment_failovers == 0 and net.int_detections == 0


# ---------------------------------------------------------------------- #
# Time-multiplexed contexts pass the integrity counters through
# ---------------------------------------------------------------------- #
def test_timemux_context_exposes_integrity_counters():
    eng = Engine()
    stats = StatsRegistry(4)
    cc = CollectiveConfig(enabled=True, value_width=4, integrity="echo",
                          time_slots=2)
    ctxs = build_time_multiplexed(eng, stats, 2, 2,
                                  GLineConfig(), cc)
    results = {}
    for cid in range(4):
        ctxs[0].arrive(cid, "sum", cid + 1,
                       (lambda c: lambda v: results.__setitem__(c, v))(cid))
    eng.run(until=4000)
    assert set(results.values()) == {10}
    assert ctxs[0].int_detections == 0
    assert ctxs[0].int_round_retries == 0
    assert ctxs[0].int_corrections == 0
    assert ctxs[0].int_op_retries == 0
    assert ctxs[0].int_failovers == 0
    assert list(ctxs[0].integrity_log) == []


# ---------------------------------------------------------------------- #
# Full-chip: seeded miscount plans through the ISA and both backends
# ---------------------------------------------------------------------- #
CHIP_KINDS = ("sum", "min", "max", "vote", "bcast") * 3


def _chip_run(integrity, seed=11, backend="heap", rate=0.02):
    from repro.chip.cmp import CMP
    from repro.common.params import CMPConfig
    from repro.cpu import isa
    from repro.faults import FaultPlan

    cc = CollectiveConfig(enabled=True, value_width=8, integrity=integrity,
                          watchdog_budget=600, watchdog_retries=2)
    plan = FaultPlan(seed=seed, scsma_miscount_rate=rate)
    cfg = CMPConfig.for_cores(16, collectives=cc).with_(
        sim_backend=backend, faults=plan)
    chip = CMP(cfg, barrier="gl")
    results = {}

    def prog(cid):
        for ep, kind in enumerate(CHIP_KINDS):
            value = (cid * 7 + ep * 3 + 1) % 256
            outcome = yield isa.CollectiveOp(kind, value=value)
            results[(ep, cid)] = outcome
            yield isa.Compute(1 + cid % 3)

    run = chip.run([prog(c) for c in range(16)])
    wrong = []
    for (ep, cid), got in sorted(results.items()):
        vals = [(c * 7 + ep * 3 + 1) % 256 for c in range(16)]
        want = ops.reference_reduce(CHIP_KINDS[ep], vals, 8)
        if got != want:
            wrong.append((ep, cid, got, want))
    return run, results, wrong, chip.stats.counters


def test_chip_off_mode_seeded_miscounts_silently_corrupt():
    # The hypothesis the integrity layer exists to kill: with verification
    # off, seeded S-CSMA miscounts deliver WRONG reduction values while
    # every op still reports success (no failover, no exception).
    _, results, wrong, counters = _chip_run("off")
    assert counters["faults.gline.miscounts"] > 0
    assert wrong, "seed 11 must corrupt at least one episode at off"
    assert FAILOVER not in set(results.values())
    assert counters.get("faults.integrity.detections", 0) == 0


@pytest.mark.parametrize("mode", ["echo", "residue"])
def test_chip_verified_modes_zero_undetected_wrong_values(mode):
    # Same seeded grid that corrupts off-mode: echo/residue detect and
    # heal every miscount -- zero wrong values end to end.
    _, _, wrong, counters = _chip_run(mode)
    assert not wrong, wrong
    assert counters["faults.integrity.detections"] > 0


def test_chip_backends_bit_identical_under_integrity():
    run_h, res_h, wrong_h, c_h = _chip_run("echo", backend="heap")
    run_b, res_b, wrong_b, c_b = _chip_run("echo", backend="batched")
    assert res_h == res_b
    assert run_h.total_cycles == run_b.total_cycles
    keys = [k for k in set(c_h) | set(c_b)
            if k.startswith(("faults.integrity", "faults.gline"))]
    assert {k: c_h.get(k, 0) for k in keys} \
        == {k: c_b.get(k, 0) for k in keys}


# ---------------------------------------------------------------------- #
# SDC sweep (experiments/integrity.py) and the hierarchical mesh
# ---------------------------------------------------------------------- #
def test_sdc_sweep_off_corrupts_verified_modes_do_not():
    from repro.experiments.integrity import run_integrity

    r = run_integrity(rates=(0.01,), num_cores=16)
    assert r.sdc("off", 0.01) > 0
    for mode in ("echo", "residue", "vote"):
        assert r.sdc(mode, 0.01) == 0, mode
    table = r.table()
    assert "corruption-free: yes" in table


def test_hierarchical_chip_survives_seeded_miscounts():
    # Regression for three cluster-level protocol holes under gather/
    # broadcast miscounts: a duplicate upward park after a mid-broadcast
    # watchdog retry, an episode split between hardware results and a
    # software cohort that could never form, and a watchdog that never
    # armed when deliveries preceded the last arrival.
    from repro.experiments.integrity import run_integrity

    r = run_integrity(rates=(0.02,), num_cores=32, iterations=15)
    assert r.sdc("off", 0.02) > 0          # vulnerable, but it completes
    for mode in ("echo", "residue", "vote"):
        row = r.rows[(mode, 0.02)]
        assert row["wrong"] == 0, (mode, row)
        assert row["detections"] > 0, (mode, row)


# ---------------------------------------------------------------------- #
# Trace audit: scripts/validate_trace.py --collective over an integrity
# recovery episode
# ---------------------------------------------------------------------- #
def _load_validate_trace():
    import importlib.util
    from pathlib import Path

    spec = importlib.util.spec_from_file_location(
        "validate_trace",
        Path(__file__).resolve().parents[2] / "scripts"
        / "validate_trace.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _traced_chip_doc(integrity="echo", rate=0.02, seed=11):
    """Perfetto doc from a 16-core run with seeded miscounts."""
    from repro.chip.cmp import CMP
    from repro.common.params import CMPConfig
    from repro.cpu import isa
    from repro.faults import FaultPlan
    from repro.obs import Observability, to_perfetto

    cc = CollectiveConfig(enabled=True, value_width=8,
                          integrity=integrity, watchdog_budget=600,
                          watchdog_retries=2)
    plan = FaultPlan(seed=seed, scsma_miscount_rate=rate)
    cfg = CMPConfig.for_cores(16, collectives=cc).with_(faults=plan)
    obs = Observability.full(16, capacity=None)
    chip = CMP(cfg, barrier="gl", obs=obs)

    def prog(cid):
        for ep, kind in enumerate(CHIP_KINDS):
            yield isa.CollectiveOp(kind, value=(cid * 7 + ep * 3 + 1) % 256)
            yield isa.Compute(1 + cid % 3)

    chip.run([prog(c) for c in range(16)])
    return to_perfetto(obs.tracer.events)


def test_trace_audit_passes_on_recovered_episodes(tmp_path):
    import json

    vt = _load_validate_trace()
    doc = _traced_chip_doc()
    fails = [e for e in doc["traceEvents"]
             if e.get("name") == "gline.integrity.fail"]
    assert fails, "seeded run must detect corrupted rounds"
    path = tmp_path / "collective.perfetto.json"
    path.write_text(json.dumps(doc))
    message = vt.check_collective(path)
    assert "integrity failures" in message
    assert message.endswith("OK")


def test_trace_audit_catches_unrecovered_failure(tmp_path):
    import json

    import pytest as _pytest

    vt = _load_validate_trace()
    doc = _traced_chip_doc()
    recovery = {"gline.integrity.retry", "gline.integrity.escalate",
                "gline.integrity.failover"}
    doc["traceEvents"] = [e for e in doc["traceEvents"]
                          if e.get("name") not in recovery]
    path = tmp_path / "tampered.perfetto.json"
    path.write_text(json.dumps(doc))
    with _pytest.raises(ValueError, match="neither corrected nor "
                                          "retried|no recovery event"):
        vt.check_collective(path)
