"""CollectiveConfig validation and its CMPConfig embedding."""

import pytest

from repro.collectives.config import CollectiveConfig
from repro.common.errors import ConfigError
from repro.common.params import CMPConfig


def test_defaults_disabled():
    cc = CollectiveConfig()
    assert not cc.enabled
    assert cc.backend == "gl"
    assert cc.value_width == 8


@pytest.mark.parametrize("kwargs", [
    {"backend": "noc"},
    {"value_width": 0},
    {"value_width": 65},
    {"num_contexts": 0},
    {"time_slots": -1},
    {"watchdog_budget": -1},
    {"watchdog_retries": -1},
])
def test_rejects_bad_values(kwargs):
    with pytest.raises(ConfigError):
        CollectiveConfig(**kwargs)


def test_roundtrips_through_dict():
    cc = CollectiveConfig(enabled=True, backend="sw", value_width=12,
                          num_contexts=2, watchdog_budget=64)
    assert CollectiveConfig.from_dict(cc.to_dict()) == cc
    with pytest.raises(ConfigError):
        CollectiveConfig.from_dict({"bogus": 1})


def test_cmp_config_carries_collectives():
    cfg = CMPConfig.for_cores(16)
    assert cfg.collectives == CollectiveConfig()
    cc = CollectiveConfig(enabled=True, value_width=6)
    cfg = CMPConfig.for_cores(16, collectives=cc)
    assert CMPConfig.from_dict(cfg.to_dict()).collectives == cc


def test_cmp_config_from_dict_backward_compatible():
    # Configs serialized before the collectives field existed must load.
    data = CMPConfig.for_cores(16).to_dict()
    data.pop("collectives")
    assert CMPConfig.from_dict(data).collectives == CollectiveConfig()
