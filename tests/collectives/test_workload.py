"""The all-reduce workload, its spec-ability and the shootout driver."""

import pytest

from repro.bench.cases import get_case
from repro.chip.cmp import CMP
from repro.collectives.config import CollectiveConfig
from repro.common.errors import WorkloadError
from repro.common.params import CMPConfig
from repro.exec.spec import RunSpec
from repro.experiments.collectives_exp import run_collectives
from repro.workloads import CollectiveAllReduceWorkload


def coll_config(num_cores, backend="gl", **kwargs):
    cc = CollectiveConfig(enabled=True, backend=backend, **kwargs)
    return CMPConfig.for_cores(num_cores, collectives=cc)


def test_workload_runs_and_verifies():
    workload = CollectiveAllReduceWorkload(iterations=6)
    chip = CMP(coll_config(16), barrier="gl")
    chip.run(workload)
    workload.verify(chip)


def test_workload_verifies_on_software_backend():
    workload = CollectiveAllReduceWorkload(iterations=4)
    chip = CMP(coll_config(16, backend="sw"), barrier="gl")
    chip.run(workload)
    workload.verify(chip)


def test_workload_verifies_through_failover():
    workload = CollectiveAllReduceWorkload(iterations=4)
    chip = CMP(coll_config(16, watchdog_budget=64, watchdog_retries=1),
               barrier="gl")
    for line in chip.collective_impl.networks[0].lines:
        if line.name.endswith("txH0"):
            line.stuck = 0
    chip.run(workload)
    workload.verify(chip)  # failover must preserve value-correctness


def test_workload_requires_enabled_collectives():
    chip = CMP(CMPConfig.for_cores(16), barrier="gl")
    with pytest.raises(WorkloadError):
        chip.run(CollectiveAllReduceWorkload(iterations=2))


def test_workload_rejects_bad_parameters():
    with pytest.raises(WorkloadError):
        CollectiveAllReduceWorkload(iterations=0)
    with pytest.raises(WorkloadError):
        CollectiveAllReduceWorkload(kinds=("sum", "xor"))
    with pytest.raises(WorkloadError):
        CollectiveAllReduceWorkload(kinds=())


def test_workload_is_spec_able():
    workload = CollectiveAllReduceWorkload(iterations=3)
    spec = RunSpec.make(workload, "gl", num_cores=16,
                        config=coll_config(16))
    assert spec.key()  # fingerprintable -> cacheable


def test_shootout_gl_beats_software():
    result = run_collectives(core_counts=(16,), iterations=4)
    assert result.speedup(16) > 1.0
    assert "4x4" in result.table()


def test_bench_case_builds_specs():
    case = get_case("collectives16x16")
    specs = case.build(True)
    assert len(specs) == 1
    assert specs[0].config.collectives.enabled
    assert specs[0].config.num_cores == 256
    # Quick and full scales must carry different digests.
    assert specs[0].key() != case.build(False)[0].key()
