"""The collective op vocabulary: reference semantics, stage arithmetic
and the software fold encoding."""

import random

import pytest

from repro.collectives import ops
from repro.common.errors import ConfigError


def test_reference_semantics():
    vals = [3, 0, 7, 5]
    assert ops.reference_reduce("sum", vals, 4) == 15
    assert ops.reference_reduce("min", vals, 4) == 0
    assert ops.reference_reduce("max", vals, 4) == 7
    assert ops.reference_reduce("any", vals, 4) == 1
    assert ops.reference_reduce("all", vals, 4) == 0
    assert ops.reference_reduce("vote", vals, 4) == 3
    assert ops.reference_reduce("bcast", vals, 4) == 3


def test_reference_masks_inputs():
    assert ops.reference_reduce("max", [0x1F, 2], 4) == 0xF
    assert ops.reference_reduce("sum", [16, 16], 4) == 0


def test_unknown_kind_rejected():
    with pytest.raises(ConfigError):
        ops.check_kind("xor")
    with pytest.raises(ConfigError):
        ops.reference_reduce("xor", [1], 4)


def test_empty_reduce_rejected():
    with pytest.raises(ConfigError):
        ops.reference_reduce("sum", [], 4)


def test_predicates_serialize_one_bit():
    for kind in ("vote", "any", "all"):
        assert ops.stage_in_width(kind, 8) == 1
        assert ops.stage_contrib(kind, 0, 8) == 0
        assert ops.stage_contrib(kind, 200, 8) == 1
    assert ops.stage_in_width("sum", 8) == 8
    assert ops.stage_contrib("min", 200, 8) == 200


def test_stage_result_width_growth():
    # A sum over n w-bit values needs log2(n * (2^w - 1)) bits.
    assert ops.stage_result_width("sum", 4, 6) == (6 * 15).bit_length()
    assert ops.stage_result_width("vote", 8, 6) == 3
    assert ops.stage_result_width("any", 8, 6) == 1
    assert ops.stage_result_width("max", 5, 6) == 5


def test_stage_finalize_thresholds():
    assert ops.stage_finalize("any", 0, 4) == 0
    assert ops.stage_finalize("any", 3, 4) == 1
    assert ops.stage_finalize("all", 3, 4) == 0
    assert ops.stage_finalize("all", 4, 4) == 1
    assert ops.stage_finalize("sum", 17, 4) == 17


@pytest.mark.parametrize("kind", ops.KINDS)
@pytest.mark.parametrize("width", [1, 4, 8])
def test_sw_fold_matches_reference(kind, width):
    """The software fold (zero-identity encoded) must agree with the
    direct reference for every kind, any fold order."""
    rng = random.Random(width * 31 + len(kind))
    for n in (1, 2, 5, 16):
        vals = [rng.randrange(1 << width) for _ in range(n)]
        ref = ops.reference_reduce(kind, vals, width)
        if kind == "bcast":
            # The fold is the identity for bcast: the root stores its
            # value directly and non-roots must not disturb it.
            acc = vals[0] & ops.mask(width)
            for i in range(1, n):
                acc = ops.sw_fold(kind, acc, vals[i], width)
        else:
            acc = 0
            for i in rng.sample(range(n), n):
                acc = ops.sw_fold(kind, acc, vals[i], width)
        assert ops.sw_final(kind, acc, width) == ref, (kind, width, vals)


def test_result_width_covers_reference():
    for kind in ops.KINDS:
        for rows, cols in [(1, 1), (2, 3), (4, 4), (7, 7)]:
            width = 6
            rw = ops.result_width(kind, width, rows, cols)
            vals = [ops.mask(width)] * (rows * cols)
            assert ops.reference_reduce(kind, vals, width) < (1 << rw)


def test_vocabulary_is_closed():
    assert set(ops.COMBINE_KIND) == set(ops.KINDS)
    assert set(ops.MECHANISM) == set(ops.KINDS)
    assert all(ops.COMBINE_KIND[k] in ops.KINDS for k in ops.KINDS)
