"""Unit and integration tests for repro.collectives."""
