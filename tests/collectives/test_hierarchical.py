"""Two-level collective fabric for meshes beyond the S-CSMA bound."""

import random

import pytest

from repro.collectives import ops
from repro.collectives.config import CollectiveConfig
from repro.collectives.hierarchical import HierarchicalCollectiveNetwork
from repro.common.params import GLineConfig
from repro.common.stats import StatsRegistry
from repro.sim.engine import Engine


def make_hier(rows, cols, width=4, **cc_kwargs):
    engine = Engine()
    stats = StatsRegistry(rows * cols)
    cc = CollectiveConfig(enabled=True, value_width=width, **cc_kwargs)
    net = HierarchicalCollectiveNetwork(engine, stats, rows, cols,
                                        GLineConfig(), cc)
    return engine, net


def run_episode(engine, net, kind, values, spread=15, seed=0):
    rng = random.Random(seed)
    got = {}
    for cid, value in enumerate(values):
        engine.schedule(rng.randrange(spread), net.arrive, cid, kind,
                        value, (lambda v=None, c=cid:
                                got.__setitem__(c, v)))
    engine.run()
    return got


@pytest.mark.parametrize("kind", ops.KINDS)
def test_8x8_delivers_reference(kind):
    width = 6
    engine, net = make_hier(8, 8, width)
    rng = random.Random(11)
    for episode in range(2):
        values = [rng.randrange(1 << width) for _ in range(64)]
        got = run_episode(engine, net, kind, values, seed=episode)
        ref = ops.reference_reduce(kind, values, width)
        assert got == {c: ref for c in range(64)}, (kind, episode)
    assert net.fully_idle()


def test_ragged_mesh():
    # 9x16 exceeds the bound on both axes and tiles unevenly.
    engine, net = make_hier(9, 16, width=4)
    values = [(i * 13 + 5) % 16 for i in range(144)]
    got = run_episode(engine, net, "sum", values)
    assert set(got.values()) == {sum(values)}


def test_cluster_partition_covers_mesh():
    _, net = make_hier(8, 8)
    cores = set()
    for cluster in net.clusters:
        ids = set(cluster.core_ids)
        assert cores.isdisjoint(ids)
        cores |= ids
    assert len(cores) == 64
