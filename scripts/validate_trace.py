#!/usr/bin/env python3
"""Validate exported trace artifacts (CI trace-smoke helper).

Usage:  python scripts/validate_trace.py [--perfetto trace.json]
                                         [--vcd trace.vcd]
                                         [--counterexample cex.json]

Checks that a Perfetto JSON artifact passes the trace-event schema
validator, and that a VCD artifact parses back and shows the G-line
gather -> release choreography in order (SglineH* before SglineV before
MglineV before MglineH*).  ``--counterexample`` additionally audits a
``repro verify`` export: the ``otherData.verify`` stamp must be present
and well-formed, its schedules must match the mesh, and when the stamp
claims a confirmed violation the early releases must be listed.  Exits
nonzero with a diagnostic on the first violation.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.obs import parse_vcd, rise_times, validate_perfetto


def check_perfetto(path: Path) -> str:
    doc = json.loads(path.read_text())
    count = validate_perfetto(doc)
    if count == 0:
        raise ValueError("trace document contains no events")
    acc = doc.get("otherData", {}).get("tracer")
    suffix = ""
    if acc is not None:
        if acc["emitted"] != acc["retained"] + acc["dropped"]:
            raise ValueError(f"tracer accounting does not balance: {acc}")
        suffix = (f" ({acc['retained']} retained, {acc['dropped']} "
                  f"dropped)")
    return f"{path}: {count} trace events, schema OK{suffix}"


def check_vcd(path: Path) -> str:
    changes = parse_vcd(path.read_text())
    if not changes:
        raise ValueError("VCD contains no signals")

    def first_rise(match) -> int:
        rises = [rise_times(changes, sig)[0] for sig in changes
                 if match(sig) and rise_times(changes, sig)]
        if not rises:
            raise ValueError(f"no rising signal matches {match.__doc__}")
        return min(rises)

    def matcher(prefix: str, suffix: str):
        def match(sig: str) -> bool:
            stem = sig.rsplit(".", 2)
            return (len(stem) == 3 and stem[1].startswith(prefix)
                    and sig.endswith(suffix))
        match.__doc__ = f"{prefix}*{suffix}"
        return match

    gather_row = first_rise(matcher("SglineH", ".level"))
    gather_col = first_rise(matcher("SglineV", ".level"))
    release_col = first_rise(matcher("MglineV", ".level"))
    release_row = first_rise(matcher("MglineH", ".level"))
    if not gather_row < gather_col < release_col < release_row:
        raise ValueError(
            f"wire sequence out of order: SglineH@{gather_row}, "
            f"SglineV@{gather_col}, MglineV@{release_col}, "
            f"MglineH@{release_row}")
    return (f"{path}: {len(changes)} signals, gather->release sequence "
            f"@{gather_row}->{release_row} OK")


def _audit_integrity(doc: dict) -> str:
    """Audit the GL_INTEGRITY_* recovery ladder, if the trace has one.

    Every ``gline.integrity.fail`` that was not corrected in place
    (``args.corrected < args.count``, i.e. the vote voter could not
    outvote the corruption) must be answered on the same network track
    by a ``retry``, ``escalate`` or ``failover`` event no later than the
    track's next delivered result -- a detection that the op completed
    past without recovery would be the silent-corruption path the
    ladder exists to close.  Returns a summary fragment ('' when the
    trace carries no integrity events at all).
    """
    recovery = {"gline.integrity.retry", "gline.integrity.escalate",
                "gline.integrity.failover"}
    watched = recovery | {"gline.integrity.fail", "gline.reduce.result"}
    tracks: dict[tuple, list[dict]] = {}
    for e in doc["traceEvents"]:
        if e.get("ph") == "i" and str(e.get("name", "")) in watched:
            tracks.setdefault((e.get("pid"), e.get("tid")), []).append(e)
    fails = healed = recovered = 0
    for events in tracks.values():
        events.sort(key=lambda e: e["ts"])
        for i, e in enumerate(events):
            if e["name"] != "gline.integrity.fail":
                continue
            fails += 1
            args = e.get("args", {})
            if args.get("corrected", 0) >= args.get("count", 1):
                healed += 1
                continue
            for later in events[i + 1:]:
                if later["name"] in recovery:
                    recovered += 1
                    break
                if later["name"] == "gline.reduce.result" \
                        and later["ts"] > e["ts"]:
                    raise ValueError(
                        f"integrity failure at ts={e['ts']} "
                        f"({args.get('op', '?')}) was neither corrected "
                        f"nor retried/escalated/failed-over before the "
                        f"op delivered at ts={later['ts']}")
            else:
                raise ValueError(
                    f"integrity failure at ts={e['ts']} "
                    f"({args.get('op', '?')}) has no recovery event "
                    f"after it")
    if not fails:
        return ""
    return (f", {fails} integrity failures "
            f"({healed} corrected in place, {recovered} recovered)")


def check_collective(path: Path) -> str:
    """Audit the GL_REDUCE_* choreography in a Perfetto artifact.

    A collective trace must open each episode (``gline.reduce.start``)
    before clocking rounds and delivering results, deliver as many
    results as operands arrived (failed-over arrivals are accounted by
    ``gline.reduce.failover`` instead), and stamp every result with the
    operation kind and the delivered value.  If the trace carries
    ``gline.integrity.*`` events the recovery ladder is audited too
    (see :func:`_audit_integrity`).
    """
    doc = json.loads(path.read_text())
    validate_perfetto(doc)
    events = [e for e in doc["traceEvents"]
              if str(e.get("name", "")).startswith("gline.reduce.")]
    if not events:
        raise ValueError("no gline.reduce.* events in trace")
    by_kind: dict[str, list[dict]] = {}
    for e in events:
        by_kind.setdefault(e["name"], []).append(e)
    arrives = by_kind.get("gline.reduce.arrive", [])
    starts = by_kind.get("gline.reduce.start", [])
    results = by_kind.get("gline.reduce.result", [])
    failovers = by_kind.get("gline.reduce.failover", [])
    if not starts:
        raise ValueError("collective trace has arrivals but no "
                         "gline.reduce.start")
    if not results and not failovers:
        raise ValueError("collective trace never delivers a result or "
                         "fails over")
    first_start = min(e["ts"] for e in starts)
    for e in results:
        if e["ts"] < first_start:
            raise ValueError(f"result at ts={e['ts']} precedes the first "
                             f"episode start at ts={first_start}")
        args = e.get("args", {})
        if "op" not in args or "value" not in args:
            raise ValueError(f"result event lacks op/value args: {e}")
    bounced = sum(len(e.get("args", {}).get("waiting", []))
                  for e in failovers)
    if len(results) + bounced < len(arrives):
        raise ValueError(
            f"{len(arrives)} operands arrived but only {len(results)} "
            f"results + {bounced} failover bounces recorded")
    return (f"{path}: {len(events)} gline.reduce.* events, "
            f"{len(starts)} episode starts, {len(results)} results"
            + (f", {len(failovers)} failovers" if failovers else "")
            + _audit_integrity(doc)
            + " OK")


def check_counterexample(path: Path) -> str:
    """Audit a ``repro verify --export-prefix`` Perfetto artifact."""
    doc = json.loads(path.read_text())
    count = validate_perfetto(doc)
    meta = doc.get("otherData", {}).get("verify")
    if not isinstance(meta, dict):
        raise ValueError("not a verify export: otherData.verify missing")
    for key in ("scenario", "mesh", "schedules", "confirmed",
                "early_releases", "property", "message"):
        if key not in meta:
            raise ValueError(f"otherData.verify incomplete: missing "
                            f"{key!r}")
    try:
        rows_s, _, cols_s = str(meta["mesh"]).partition("x")
        num_cores = int(rows_s) * int(cols_s)
    except ValueError:
        raise ValueError(f"otherData.verify.mesh malformed: "
                         f"{meta['mesh']!r}") from None
    schedules = meta["schedules"]
    if not isinstance(schedules, list) or not any(schedules):
        raise ValueError("otherData.verify.schedules empty")
    for t, cores in enumerate(schedules):
        bad = [c for c in cores if not 0 <= int(c) < num_cores]
        if bad:
            raise ValueError(f"schedule cycle {t} names cores {bad} "
                             f"outside the {meta['mesh']} mesh")
    if meta["confirmed"] and not meta["early_releases"]:
        raise ValueError("verify stamp claims a confirmed violation but "
                         "lists no early releases")
    # The replay trace must actually contain the scheduled arrivals.
    arrives = sum(1 for e in doc["traceEvents"]
                  if e.get("ph") == "i" and e.get("name") == "gline.arrive")
    scheduled = sum(len(c) for c in schedules)
    if arrives < scheduled:
        raise ValueError(f"trace records {arrives} arrivals but the "
                         f"schedule delivers {scheduled}")
    verdict = ("CONFIRMED violation of " + str(meta["property"])
               if meta["confirmed"] else "no violation reproduced")
    return (f"{path}: {count} events, verify stamp OK "
            f"({meta['mesh']}, scenario {meta['scenario']}, {verdict})")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--perfetto", type=Path, default=None)
    parser.add_argument("--vcd", type=Path, default=None)
    parser.add_argument("--counterexample", type=Path, default=None,
                        metavar="JSON",
                        help="a repro verify --export-prefix Perfetto "
                             "artifact to audit (schema + verify stamp)")
    parser.add_argument("--collective", type=Path, default=None,
                        metavar="JSON",
                        help="a Perfetto artifact from a collective run "
                             "to audit (gline.reduce.* choreography)")
    args = parser.parse_args(argv)
    if args.perfetto is None and args.vcd is None \
            and args.counterexample is None and args.collective is None:
        parser.error("nothing to validate: pass --perfetto, --vcd, "
                     "--counterexample and/or --collective")
    try:
        if args.perfetto is not None:
            print(check_perfetto(args.perfetto))
        if args.vcd is not None:
            print(check_vcd(args.vcd))
        if args.counterexample is not None:
            print(check_counterexample(args.counterexample))
        if args.collective is not None:
            print(check_collective(args.collective))
    except (ValueError, KeyError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
