#!/usr/bin/env python3
"""Validate exported trace artifacts (CI trace-smoke helper).

Usage:  python scripts/validate_trace.py [--perfetto trace.json]
                                         [--vcd trace.vcd]

Checks that a Perfetto JSON artifact passes the trace-event schema
validator, and that a VCD artifact parses back and shows the G-line
gather -> release choreography in order (SglineH* before SglineV before
MglineV before MglineH*).  Exits nonzero with a diagnostic on the first
violation.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.obs import parse_vcd, rise_times, validate_perfetto


def check_perfetto(path: Path) -> str:
    doc = json.loads(path.read_text())
    count = validate_perfetto(doc)
    if count == 0:
        raise ValueError("trace document contains no events")
    acc = doc.get("otherData", {}).get("tracer")
    suffix = ""
    if acc is not None:
        if acc["emitted"] != acc["retained"] + acc["dropped"]:
            raise ValueError(f"tracer accounting does not balance: {acc}")
        suffix = (f" ({acc['retained']} retained, {acc['dropped']} "
                  f"dropped)")
    return f"{path}: {count} trace events, schema OK{suffix}"


def check_vcd(path: Path) -> str:
    changes = parse_vcd(path.read_text())
    if not changes:
        raise ValueError("VCD contains no signals")

    def first_rise(match) -> int:
        rises = [rise_times(changes, sig)[0] for sig in changes
                 if match(sig) and rise_times(changes, sig)]
        if not rises:
            raise ValueError(f"no rising signal matches {match.__doc__}")
        return min(rises)

    def matcher(prefix: str, suffix: str):
        def match(sig: str) -> bool:
            stem = sig.rsplit(".", 2)
            return (len(stem) == 3 and stem[1].startswith(prefix)
                    and sig.endswith(suffix))
        match.__doc__ = f"{prefix}*{suffix}"
        return match

    gather_row = first_rise(matcher("SglineH", ".level"))
    gather_col = first_rise(matcher("SglineV", ".level"))
    release_col = first_rise(matcher("MglineV", ".level"))
    release_row = first_rise(matcher("MglineH", ".level"))
    if not gather_row < gather_col < release_col < release_row:
        raise ValueError(
            f"wire sequence out of order: SglineH@{gather_row}, "
            f"SglineV@{gather_col}, MglineV@{release_col}, "
            f"MglineH@{release_row}")
    return (f"{path}: {len(changes)} signals, gather->release sequence "
            f"@{gather_row}->{release_row} OK")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--perfetto", type=Path, default=None)
    parser.add_argument("--vcd", type=Path, default=None)
    args = parser.parse_args(argv)
    if args.perfetto is None and args.vcd is None:
        parser.error("nothing to validate: pass --perfetto and/or --vcd")
    try:
        if args.perfetto is not None:
            print(check_perfetto(args.perfetto))
        if args.vcd is not None:
            print(check_vcd(args.vcd))
    except (ValueError, KeyError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
